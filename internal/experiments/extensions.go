package experiments

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
)

// ExtSignatureFamily compares the three signature variants of the paper's
// reference [8] (simple, integrated, multi-level), the index+signature
// hybrid of its references [3,4], and distributed indexing as the pure-
// tree yardstick — the schemes the paper surveys but does not simulate.
func ExtSignatureFamily(opt Options) ([]*Table, error) {
	schemes := []string{"signature", "signature-integrated", "signature-multilevel", "hybrid", "distributed"}
	t := &Table{
		ID:     "ext-signatures",
		Title:  "Extension: signature family and index+signature hybrid",
		XLabel: "records",
		YLabel: "bytes",
	}
	for _, s := range schemes {
		t.Columns = append(t.Columns, s+" access", s+" tuning")
	}
	sweep := opt.recordSweep()
	if len(sweep) > 3 {
		sweep = []int{sweep[0], sweep[len(sweep)/2], sweep[len(sweep)-1]}
	}
	for _, nr := range sweep {
		cells := make([]float64, 0, len(t.Columns))
		for _, s := range schemes {
			cfg := opt.baseConfig(s, nr)
			res, err := point(opt, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, res.Access.Mean(), res.Tuning.Mean())
		}
		t.AddRow(float64(nr), cells...)
	}
	t.Note("integrated/multi-level use %d-record groups; hybrid adds a group-level index tree", core.DefaultConfig("hybrid", 100).Hybrid.GroupSize)
	return []*Table{t}, nil
}

// ExtMultiAttribute measures attribute-equality queries — the workload
// signature indexing was designed for ([8]) and that key-based indexes
// cannot serve: the signature scheme filters with signature reads while
// flat broadcast must download record after record. Run outside the
// Simulator (attribute workloads are not part of the paper's request
// model) with uniform random target records and arrivals.
func ExtMultiAttribute(opt Options) ([]*Table, error) {
	nr := opt.comparisonRecords()
	t := &Table{
		ID:     "ext-multiattr",
		Title:  "Extension: attribute-equality queries (signature vs flat scan)",
		XLabel: "records",
		YLabel: "bytes",
		Columns: []string{
			"flat access", "flat tuning",
			"signature access", "signature tuning", "tuning ratio",
		},
	}
	t.Note("each query asks for the record whose attribute 1 equals a stored value")
	sizes := []int{nr / 2, nr}
	for _, n := range sizes {
		cfg := opt.baseConfig("flat", n)
		ds, err := datagen.Generate(cfg.Data)
		if err != nil {
			return nil, err
		}
		fb, err := core.BuildBroadcast(ds, cfg)
		if err != nil {
			return nil, err
		}
		sigCfg := opt.baseConfig("signature", n)
		sb, err := core.BuildBroadcast(ds, sigCfg)
		if err != nil {
			return nil, err
		}
		fq := fb.(access.AttrQuerier)
		sq := sb.(access.AttrQuerier)

		rng := sim.NewRNG(cfg.Seed)
		queries := cfg.MinRequests
		var fAcc, fTun, sAcc, sTun float64
		for q := 0; q < queries; q++ {
			rec := rng.Intn(ds.Len())
			value := ds.Record(rec).Attrs[1]
			fa := sim.Time(rng.Int63n(int64(fb.Channel().CycleLen())))
			fres, err := access.Walk(fb.Channel(), fq.NewAttrClient(1, value), fa, 0)
			if err != nil {
				return nil, err
			}
			sa := sim.Time(rng.Int63n(int64(sb.Channel().CycleLen())))
			sres, err := access.Walk(sb.Channel(), sq.NewAttrClient(1, value), sa, 0)
			if err != nil {
				return nil, err
			}
			if !fres.Found || !sres.Found {
				return nil, fmt.Errorf("ext-multiattr: stored attribute value not found")
			}
			fAcc += float64(fres.Access)
			fTun += float64(fres.Tuning)
			sAcc += float64(sres.Access)
			sTun += float64(sres.Tuning)
		}
		div := float64(queries)
		t.AddRow(float64(n), fAcc/div, fTun/div, sAcc/div, sTun/div, (sTun/div)/(fTun/div))
		opt.progress("ext-multiattr records=%d flatT=%.0f sigT=%.0f", n, fTun/div, sTun/div)
	}
	return []*Table{t}, nil
}

// ExtBroadcastDisks sweeps request skew for broadcast disks (Acharya et
// al.) against flat broadcast: with hot records broadcast more often,
// expected access time drops below flat as the Zipf exponent grows, while
// a uniform workload pays for the repeated hot slots.
func ExtBroadcastDisks(opt Options) ([]*Table, error) {
	nr := opt.comparisonRecords()
	t := &Table{
		ID:     "ext-bdisk",
		Title:  "Extension: broadcast disks under skewed demand",
		XLabel: "zipf_s",
		YLabel: "bytes",
		Columns: []string{
			"flat access", "broadcast-disks access",
			"bdisk/flat ratio", "bdisk cycle_bytes",
		},
	}
	t.Note("x = Zipf exponent over popularity ranks; 0 is the uniform workload")
	t.Note("3-disk pyramid: hottest 10%% of records 4x, next 30%% 2x, rest 1x")
	for _, s := range []float64{0, 1.2, 1.5, 2, 3} {
		flatCfg := opt.baseConfig("flat", nr)
		flatCfg.ZipfS = s
		flatRes, err := point(opt, flatCfg)
		if err != nil {
			return nil, err
		}
		bdCfg := opt.baseConfig("broadcast-disks", nr)
		bdCfg.ZipfS = s
		bdRes, err := point(opt, bdCfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(s,
			flatRes.Access.Mean(), bdRes.Access.Mean(),
			bdRes.Access.Mean()/flatRes.Access.Mean(),
			float64(bdRes.CycleBytes))
	}
	return []*Table{t}, nil
}
