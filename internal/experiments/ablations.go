package experiments

import (
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/schemes/treeidx"
)

// AblateReplication sweeps distributed indexing's replication depth r
// (paper §2.1 uses the optimal r throughout; this shows what the choice is
// worth).
func AblateReplication(opt Options) ([]*Table, error) {
	nr := opt.comparisonRecords()
	ds, err := datagen.Generate(datagen.Default(nr))
	if err != nil {
		return nil, err
	}
	_, tree, err := treeidx.Compute(ds)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablate-r",
		Title:   "Distributed indexing: replication depth sweep",
		XLabel:  "r",
		YLabel:  "bytes",
		Columns: []string{"access (S)", "access (A)", "tuning (S)", "tuning (A)", "cycle_bytes"},
	}
	t.Note("workload: %d records; tree has %d levels", nr, tree.Levels)
	for r := 0; r < tree.Levels; r++ {
		cfg := opt.baseConfig("distributed", nr)
		cfg.Dist.R = r
		res, err := point(opt, cfg)
		if err != nil {
			return nil, err
		}
		aA, aT := analytic(cfg, res)
		t.AddRow(float64(r), res.Access.Mean(), aA, res.Tuning.Mean(), aT, float64(res.CycleBytes))
	}
	return []*Table{t}, nil
}

// AblateM sweeps (1,m) indexing's index replication count m.
func AblateM(opt Options) ([]*Table, error) {
	nr := opt.comparisonRecords()
	t := &Table{
		ID:      "ablate-m",
		Title:   "(1,m) indexing: index replication sweep",
		XLabel:  "m",
		YLabel:  "bytes",
		Columns: []string{"access (S)", "access (A)", "tuning (S)", "tuning (A)", "cycle_bytes"},
	}
	ms := []int{1, 2, 4, 8, 16, 32}
	if opt.Fast {
		ms = []int{1, 2, 4, 8}
	}
	for _, m := range ms {
		cfg := opt.baseConfig("(1,m)", nr)
		cfg.Onem.M = m
		res, err := point(opt, cfg)
		if err != nil {
			return nil, err
		}
		aA, aT := analytic(cfg, res)
		t.AddRow(float64(m), res.Access.Mean(), aA, res.Tuning.Mean(), aT, float64(res.CycleBytes))
	}
	return []*Table{t}, nil
}

// AblateSignatureLength sweeps the signature size, exposing the paper's
// two §2.3 tradeoffs: signature length against tuning time, and access
// time against tuning time (short signatures -> short cycle but false
// drops).
func AblateSignatureLength(opt Options) ([]*Table, error) {
	nr := opt.comparisonRecords()
	t := &Table{
		ID:      "ablate-sig",
		Title:   "Signature indexing: signature length sweep",
		XLabel:  "sig_bytes",
		YLabel:  "bytes",
		Columns: []string{"access (S)", "access (A)", "tuning (S)", "tuning (A)", "mean_probes"},
	}
	for _, sb := range []int{2, 4, 8, 16, 32, 64} {
		cfg := opt.baseConfig("signature", nr)
		cfg.Signature.SigBytes = sb
		if cfg.Signature.BitsPerField > sb*8 {
			cfg.Signature.BitsPerField = sb * 8
		}
		res, err := point(opt, cfg)
		if err != nil {
			return nil, err
		}
		aA, aT := analytic(cfg, res)
		t.AddRow(float64(sb), res.Access.Mean(), aA, res.Tuning.Mean(), aT, res.Probes.Mean())
	}
	return []*Table{t}, nil
}

// AblateHashAllocation sweeps the hashing load factor Nr/Na: the overflow
// versus directory-size tradeoff of §2.2.
func AblateHashAllocation(opt Options) ([]*Table, error) {
	nr := opt.comparisonRecords()
	t := &Table{
		ID:      "ablate-hash",
		Title:   "Simple hashing: allocation (load factor) sweep",
		XLabel:  "load",
		YLabel:  "bytes",
		Columns: []string{"access (S)", "access (A)", "tuning (S)", "tuning (A)", "Nc", "empties"},
	}
	for _, lf := range []float64{1, 1.5, 2, 3, 5, 8} {
		cfg := opt.baseConfig("hashing", nr)
		cfg.Hashing.LoadFactor = lf
		res, err := point(opt, cfg)
		if err != nil {
			return nil, err
		}
		aA, aT := analytic(cfg, res)
		t.AddRow(lf, res.Access.Mean(), aA, res.Tuning.Mean(), aT,
			res.Params["Nc"], res.Params["empties"])
	}
	return []*Table{t}, nil
}

// AblateErrorRate sweeps an error-prone channel's bucket corruption rate
// for distributed indexing and signature indexing (the extension motivated
// by the paper's reference [9]): selective tuning's doze pointers are
// fragile under errors, serial scans degrade more gracefully.
func AblateErrorRate(opt Options) ([]*Table, error) {
	nr := opt.comparisonRecords()
	t := &Table{
		ID:     "ablate-errors",
		Title:  "Error-prone channel: bucket corruption sweep",
		XLabel: "error_rate",
		YLabel: "bytes",
		Columns: []string{
			"distributed access", "distributed tuning", "distributed restarts/req",
			"signature access", "signature tuning", "signature restarts/req",
		},
	}
	rates := []float64{0, 0.001, 0.01, 0.05, 0.1}
	if opt.Fast {
		rates = []float64{0, 0.01, 0.1}
	}
	for _, ber := range rates {
		cells := make([]float64, 0, 6)
		for _, s := range []string{"distributed", "signature"} {
			cfg := opt.baseConfig(s, nr)
			cfg.BitErrorRate = ber
			// This ablation is the legacy error layer; it is mutually
			// exclusive with the faults layer, so drop any session-wide
			// Options.Faults for these points.
			cfg.Faults = faults.Config{}
			res, err := point(opt, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, res.Access.Mean(), res.Tuning.Mean(),
				float64(res.Restarts)/float64(res.Requests))
		}
		t.AddRow(ber, cells...)
	}
	return []*Table{t}, nil
}
