// Package multichannel models K-channel broadcast dissemination: one
// logical broadcast cycle allocated across several physical channels that
// transmit in parallel, plus the receiver-side cost of hopping between
// them.
//
// The paper evaluates every access method on a single channel, but the
// field moved to multi-channel dissemination (see PAPERS.md: Khatibi's
// multichannel XML streams, Lai/Lin/Liu's conflict-avoiding multi-channel
// scheduling). This package opens that axis for every scheme without
// touching the schemes themselves: the logical cycle a scheme builds stays
// exactly as constructed, and an allocation policy decides which physical
// channel broadcasts which bucket, at which phase. The access layer's
// channel-hopping walkers (access.WalkMulti, access.WalkRecoverMulti)
// consume the geometry through Set.
//
// Three allocation policies are provided:
//
//   - PolicyReplicated: every channel carries the full cycle, phase-
//     staggered by cycle/K, so the expected wait for any specific bucket
//     drops by ~1/K while tuning time is unchanged;
//   - PolicyIndexData: dedicated index channel(s) carry only the index
//     buckets (phase-staggered among themselves) while the data buckets
//     are partitioned contiguously across the remaining channels — the
//     K-channel generalization of (1,m)'s index/data separation;
//   - PolicySkewed: Broadcast-Disks-style frequency partition — data
//     buckets are split across channels by Zipf access probability, so a
//     hot channel has a short cycle that repeats its buckets often, while
//     index buckets (if any) are replicated on every channel.
//
// Switching channels is not free: Config.SwitchCost is the bytes of
// broadcast progress that elapse while the receiver retunes its RF front
// end. The wait is spent dozing, so a hop adds to access time but never to
// tuning time — the same accounting the paper uses for doze-mode waits.
//
// Determinism: a Set is a pure function of (base channel, Config), every
// geometry query is deterministic, and the walkers draw no randomness, so
// a multichannel run's Result remains a pure function of
// (seed, shards, multichannel config) under the DESIGN.md §7 contract.
// With Channels=1 under PolicyReplicated and zero switch cost the geometry
// is identical to the base channel and every walk reproduces the
// single-channel walk byte for byte (the K=1 identity guarantee).
package multichannel

import (
	"fmt"

	"github.com/airindex/airindex/internal/units"
)

// PolicyKind selects how the logical cycle is allocated across the K
// physical channels. It is a closed enum: the airlint exhaustive analyzer
// requires every switch over it to cover all constants or carry a default.
type PolicyKind uint8

const (
	// PolicyReplicated (the zero value) carries the full logical cycle on
	// every channel, phase-staggered by cycle/K.
	PolicyReplicated PolicyKind = iota
	// PolicyIndexData dedicates IndexChannels channels to the index
	// buckets and partitions the data buckets contiguously (balanced by
	// bytes) across the remaining channels.
	PolicyIndexData
	// PolicySkewed partitions the data buckets across channels by Zipf
	// access probability over popularity rank: hot buckets land on short
	// cycles that repeat often. Index buckets are replicated everywhere.
	PolicySkewed
)

// String returns the policy's CLI name.
func (k PolicyKind) String() string {
	switch k {
	case PolicyReplicated:
		return "replicated"
	case PolicyIndexData:
		return "indexdata"
	case PolicySkewed:
		return "skewed"
	default:
		return fmt.Sprintf("policy(%d)", uint8(k))
	}
}

// ParsePolicy maps a CLI name to its PolicyKind.
func ParsePolicy(s string) (PolicyKind, error) {
	switch s {
	case "", "replicated":
		return PolicyReplicated, nil
	case "indexdata", "index-data":
		return PolicyIndexData, nil
	case "skewed":
		return PolicySkewed, nil
	default:
		return PolicyReplicated, fmt.Errorf("multichannel: unknown allocation policy %q (have replicated, indexdata, skewed)", s)
	}
}

// MaxChannels bounds the channel count; real broadcast deployments use a
// handful of carriers, and the experiment family sweeps K=1..8.
const MaxChannels = 64

// Config parameterizes the K-channel subsystem. The zero value disables
// it entirely: the simulator keeps the single-channel code path, which is
// what every figure of the paper uses.
type Config struct {
	// Channels is the number of physical channels K. 0 disables the
	// subsystem; 1 runs the multichannel walker over a single channel,
	// which reproduces the single-channel results byte for byte (the K=1
	// identity guarantee, pinned by a differential test and CI job).
	Channels int

	// SwitchCost is the bytes of broadcast progress that elapse while the
	// receiver retunes from one channel to another. The wait is spent
	// dozing: it adds to access time but never to tuning time. The initial
	// tune at request arrival is free — the receiver was not locked to any
	// channel yet.
	SwitchCost units.ByteCount

	// Policy selects the allocation of buckets to channels.
	Policy PolicyKind

	// IndexChannels is how many channels PolicyIndexData dedicates to the
	// index buckets; 0 defaults to 1. Must leave at least one data
	// channel. Ignored by the other policies.
	IndexChannels int

	// Skew is PolicySkewed's Zipf exponent over data-bucket popularity
	// rank (rank 0 hottest, matching the workload's convention); 0 splits
	// the data mass evenly. Ignored by the other policies.
	Skew float64
}

// Enabled reports whether the K-channel subsystem is active.
func (c Config) Enabled() bool { return c.Channels > 0 }

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Channels < 0 {
		return fmt.Errorf("multichannel: channels %d must be non-negative (0 disables)", c.Channels)
	}
	if c.Channels > MaxChannels {
		return fmt.Errorf("multichannel: channels %d exceeds the maximum %d", c.Channels, MaxChannels)
	}
	if c.SwitchCost < 0 {
		return fmt.Errorf("multichannel: switch cost %d bytes must be non-negative", c.SwitchCost)
	}
	if c.IndexChannels < 0 {
		return fmt.Errorf("multichannel: index channels %d must be non-negative (0 defaults to 1)", c.IndexChannels)
	}
	if c.Skew < 0 {
		return fmt.Errorf("multichannel: skew exponent %v must be non-negative", c.Skew)
	}
	switch c.Policy {
	case PolicyReplicated, PolicySkewed:
	case PolicyIndexData:
		if c.Enabled() {
			ic := c.indexChannels()
			if ic >= c.Channels {
				return fmt.Errorf("multichannel: indexdata with %d index channels needs at least %d channels total (have %d); leave one data channel", ic, ic+1, c.Channels)
			}
		}
	default:
		return fmt.Errorf("multichannel: unknown policy kind %d", c.Policy)
	}
	if !c.Enabled() && c.SwitchCost > 0 {
		return fmt.Errorf("multichannel: switch cost %d set but channels is 0; set Channels to enable the subsystem", c.SwitchCost)
	}
	return nil
}

// indexChannels returns the effective index-channel count for
// PolicyIndexData, applying the default of 1.
func (c Config) indexChannels() int {
	if c.IndexChannels <= 0 {
		return 1
	}
	return c.IndexChannels
}
