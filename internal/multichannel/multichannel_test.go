package multichannel

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// fakeBucket is a minimal channel.Bucket for geometry tests.
type fakeBucket struct {
	size units.ByteCount
	kind wire.Kind
}

func (b fakeBucket) Size() units.ByteCount { return b.size }
func (b fakeBucket) Kind() wire.Kind       { return b.kind }
func (b fakeBucket) Encode() []byte        { return make([]byte, int(b.size)) }

// buildCycle assembles a channel from (size, kind) pairs.
func buildCycle(t *testing.T, specs ...fakeBucket) *channel.Channel {
	t.Helper()
	buckets := make([]channel.Bucket, len(specs))
	for i, s := range specs {
		buckets[i] = s
	}
	ch, err := channel.Build(buckets)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// onemLike is a small (1,m)-flavoured cycle: two index buckets, then data,
// then two more index buckets, then data. 6 data buckets of 30 bytes, 4
// index buckets of 10 bytes; cycle = 220 bytes.
func onemLike(t *testing.T) *channel.Channel {
	t.Helper()
	idx := fakeBucket{size: 10, kind: wire.KindIndex}
	dat := fakeBucket{size: 30, kind: wire.KindData}
	return buildCycle(t, idx, idx, dat, dat, dat, idx, idx, dat, dat, dat)
}

// flatLike is an all-data cycle of n buckets, 20 bytes each.
func flatLike(t *testing.T, n int) *channel.Channel {
	t.Helper()
	specs := make([]fakeBucket, n)
	for i := range specs {
		specs[i] = fakeBucket{size: 20, kind: wire.KindData}
	}
	return buildCycle(t, specs...)
}

func TestPolicyKindStringsAndParse(t *testing.T) {
	for _, k := range []PolicyKind{PolicyReplicated, PolicyIndexData, PolicySkewed} {
		got, err := ParsePolicy(k.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := ParsePolicy("frequency"); err == nil {
		t.Error("unknown policy name should not parse")
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyReplicated {
		t.Errorf("empty name should default to replicated, got %v, %v", p, err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{Channels: 1},
		{Channels: 8, SwitchCost: 100, Policy: PolicyReplicated},
		{Channels: 4, Policy: PolicyIndexData, IndexChannels: 2},
		{Channels: 3, Policy: PolicySkewed, Skew: 1.2},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{Channels: -1},
		{Channels: MaxChannels + 1},
		{Channels: 2, SwitchCost: -1},
		{Channels: 2, IndexChannels: -1},
		{Channels: 2, Skew: -0.5},
		{Channels: 2, Policy: PolicyIndexData, IndexChannels: 2}, // no data channel left
		{Channels: 1, Policy: PolicyIndexData},                   // ditto, via the default ic=1
		{Channels: 2, Policy: PolicyKind(9)},
		{SwitchCost: 64}, // cost without channels
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestBuildDisabledConfigFails(t *testing.T) {
	if _, err := Build(flatLike(t, 4), Config{}); err == nil {
		t.Fatal("building a Set from a disabled config should fail")
	}
}

// TestReplicatedK1Identity pins the K=1 identity at the geometry level:
// every query primitive must agree exactly with the base channel's.
func TestReplicatedK1Identity(t *testing.T) {
	base := onemLike(t)
	set, err := Build(base, Config{Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	cycle := int64(base.CycleLen())
	for tt := int64(0); tt < 3*cycle; tt += 7 {
		at := sim.Time(tt)
		ch, local, start := set.FirstBucket(at)
		wantIdx, wantStart := base.NextBucketAt(at)
		if ch != 0 || local != wantIdx || start != wantStart {
			t.Fatalf("FirstBucket(%d) = (%d, %d, %d), want (0, %d, %d)", tt, ch, local, start, wantIdx, wantStart)
		}
		n := int(base.NumBuckets())
		for i := 0; i < n; i++ {
			target := units.Index(i)
			fch, flocal, fstart := set.NextFeasible(target, at, 0)
			if fch != 0 || flocal != target {
				t.Fatalf("NextFeasible(%d, %d) landed on (%d, %d)", i, tt, fch, flocal)
			}
			if want := base.NextOccurrence(target, at); fstart != want {
				t.Fatalf("NextFeasible(%d, %d) start %d, want NextOccurrence %d", i, tt, fstart, want)
			}
		}
		if got, want := set.NextCycleStartOn(0, at), base.NextCycleStart(at); got != want {
			t.Fatalf("NextCycleStartOn(0, %d) = %d, want %d", tt, got, want)
		}
	}
}

func TestReplicatedStaggeredPhases(t *testing.T) {
	base := flatLike(t, 5) // cycle 100 bytes
	set, err := Build(base, Config{Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if set.K() != 4 {
		t.Fatalf("K = %d, want 4", set.K())
	}
	// Bucket 0 starts at phase j*25 on channel j; from t=0 the earliest
	// feasible occurrence of bucket 0 (no cost, from channel 0) is t=0.
	ch, _, start := set.NextFeasible(0, 0, 0)
	if ch != 0 || start != 0 {
		t.Fatalf("bucket 0 at t=0: channel %d start %d, want channel 0 start 0", ch, start)
	}
	// From t=1, channel 1's copy at phase 25 beats channel 0's next full
	// cycle at 100.
	ch, _, start = set.NextFeasible(0, 1, 0)
	if ch != 1 || start != 25 {
		t.Fatalf("bucket 0 at t=1: channel %d start %d, want channel 1 start 25", ch, start)
	}
	// A switch cost shifts feasibility: cost 80 makes channel 1's copy
	// feasible only from t=81 > 25, so its next occurrence is 125; channel
	// 0's own copy at 100 wins.
	costSet, err := Build(base, Config{Channels: 4, SwitchCost: 80})
	if err != nil {
		t.Fatal(err)
	}
	ch, _, start = costSet.NextFeasible(0, 1, 0)
	if ch != 0 || start != 100 {
		t.Fatalf("bucket 0 at t=1 with cost 80: channel %d start %d, want channel 0 start 100", ch, start)
	}
}

func TestReplicatedInitialWaitDropsWithK(t *testing.T) {
	base := flatLike(t, 5)
	for _, k := range []int{1, 2, 4} {
		set, err := Build(base, Config{Channels: k})
		if err != nil {
			t.Fatal(err)
		}
		// Max initial wait over a sample of arrival times shrinks ~1/K.
		var worst sim.Time
		for tt := int64(0); tt < 100; tt++ {
			_, _, start := set.FirstBucket(sim.Time(tt))
			if w := start - sim.Time(tt); w > worst {
				worst = w
			}
		}
		if maxWait := sim.Time(int64(20)); k > 1 && worst >= maxWait {
			t.Errorf("K=%d worst initial wait %d not below one bucket %d", k, worst, maxWait)
		}
	}
}

func TestIndexDataSplit(t *testing.T) {
	base := onemLike(t)
	set, err := Build(base, Config{Channels: 3, Policy: PolicyIndexData})
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0 carries the 4 index buckets (40 bytes); channels 1 and 2
	// split the 6 data buckets 3/3 (90 bytes each).
	if got := set.ChannelCycle(0); got != 40 {
		t.Errorf("index channel cycle %d, want 40", got)
	}
	if a, b := set.ChannelCycle(1), set.ChannelCycle(2); a != 90 || b != 90 {
		t.Errorf("data channel cycles %d/%d, want 90/90", a, b)
	}
	// Every logical bucket must be placed exactly once (nothing is
	// replicated in the index/data split with one index channel).
	n := int(set.NumLogical())
	for i := 0; i < n; i++ {
		got := len(set.places[units.Index(i)])
		if got != 1 {
			t.Errorf("logical bucket %d placed %d times, want 1", i, got)
		}
	}
	// Logical identity survives the mapping.
	for j := 0; j < set.K(); j++ {
		m := set.member[j]
		for p := range m.logical {
			li := set.Logical(j, units.Index(p))
			if set.SizeOfLocal(j, units.Index(p)) != base.SizeOf(li) {
				t.Fatalf("channel %d local %d size mismatch against logical %d", j, p, li)
			}
		}
	}
}

func TestIndexDataStaggersIndexChannels(t *testing.T) {
	base := onemLike(t)
	set, err := Build(base, Config{Channels: 4, Policy: PolicyIndexData, IndexChannels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p0, p1 := set.member[0].phase, set.member[1].phase; p0 != 0 || p1 != 20 {
		t.Errorf("index channel phases %d/%d, want 0/20 (half the 40-byte index cycle)", p0, p1)
	}
	// Index buckets are now reachable on two channels.
	if got := len(set.places[0]); got != 2 {
		t.Errorf("index bucket placed %d times, want 2", got)
	}
}

func TestIndexDataRejectsAllDataCycle(t *testing.T) {
	if _, err := Build(flatLike(t, 6), Config{Channels: 2, Policy: PolicyIndexData}); err == nil {
		t.Fatal("indexdata over an all-data cycle should fail")
	}
}

func TestSkewedPartition(t *testing.T) {
	base := flatLike(t, 12)
	set, err := Build(base, Config{Channels: 3, Policy: PolicySkewed, Skew: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	// Hot channel carries the head of the popularity order and is the
	// shortest cycle.
	if set.ChannelCycle(0) >= set.ChannelCycle(2) {
		t.Errorf("hot channel cycle %d not shorter than cold %d", set.ChannelCycle(0), set.ChannelCycle(2))
	}
	if got := set.Logical(0, 0); got != 0 {
		t.Errorf("hot channel should open with logical bucket 0, got %d", got)
	}
	// Every logical bucket is placed exactly once and groups are
	// contiguous in logical order.
	seen := make([]int, int(set.NumLogical()))
	for i := range set.places {
		seen[i] = len(set.places[i])
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("logical bucket %d placed %d times, want 1", i, n)
		}
	}
}

func TestSkewedReplicatesIndexBuckets(t *testing.T) {
	base := onemLike(t)
	set, err := Build(base, Config{Channels: 2, Policy: PolicySkewed})
	if err != nil {
		t.Fatal(err)
	}
	// The 4 index buckets appear on both channels; the 6 data buckets on
	// exactly one.
	idxPlaced, dataPlaced := 0, 0
	n := int(base.NumBuckets())
	for i := 0; i < n; i++ {
		if base.Bucket(units.Index(i)).Kind() == wire.KindData {
			dataPlaced += len(set.places[i])
		} else {
			idxPlaced += len(set.places[i])
		}
	}
	if idxPlaced != 8 {
		t.Errorf("index placements %d, want 8 (4 buckets x 2 channels)", idxPlaced)
	}
	if dataPlaced != 6 {
		t.Errorf("data placements %d, want 6 (each on one channel)", dataPlaced)
	}
}

func TestSkewedRejectsTooManyChannels(t *testing.T) {
	if _, err := Build(flatLike(t, 3), Config{Channels: 4, Policy: PolicySkewed}); err == nil {
		t.Fatal("more channels than data buckets should fail")
	}
}

// TestOccurrenceArithmetic exercises the phase-shifted occurrence math
// directly, including occurrences that precede the phase offset.
func TestOccurrenceArithmetic(t *testing.T) {
	base := flatLike(t, 3) // cycle 60
	set, err := Build(base, Config{Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := &set.member[1] // phase 30
	// Bucket 2 starts at local offset 40; on the shifted channel its
	// occurrences are ..., 10, 70, 130, ... (40 + 30 - 60 = 10).
	for _, tc := range []struct{ t, want int64 }{
		{0, 10}, {10, 10}, {11, 70}, {70, 70}, {71, 130},
	} {
		if got := m.nextOccurrence(2, sim.Time(tc.t)); got != sim.Time(tc.want) {
			t.Errorf("nextOccurrence(2, %d) = %d, want %d", tc.t, got, tc.want)
		}
	}
	// Cycle starts on the shifted channel: ..., 30, 90, ...
	for _, tc := range []struct{ t, want int64 }{
		{0, 30}, {30, 30}, {31, 90},
	} {
		if got := m.nextCycleStart(sim.Time(tc.t)); got != sim.Time(tc.want) {
			t.Errorf("nextCycleStart(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
	// Boundaries: at t=0 the shifted channel is mid-bucket (the bucket
	// that started at -20 ends at 10); the next complete bucket is bucket
	// 2 at 10.
	idx, start := m.nextBucketAt(0)
	if idx != 2 || start != 10 {
		t.Errorf("nextBucketAt(0) = (%d, %d), want (2, 10)", idx, start)
	}
}

// TestBuildDeterministic pins that the Set is a pure function of its
// inputs: two builds of the same config yield identical geometry.
func TestBuildDeterministic(t *testing.T) {
	base := onemLike(t)
	for _, cfg := range []Config{
		{Channels: 3},
		{Channels: 3, Policy: PolicyIndexData},
		{Channels: 2, Policy: PolicySkewed, Skew: 1.1},
	} {
		a, err := Build(base, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(base, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.places, b.places) {
			t.Errorf("%+v: placements differ across builds", cfg)
		}
		for j := 0; j < a.K(); j++ {
			if a.member[j].phase != b.member[j].phase {
				t.Errorf("%+v: channel %d phase differs", cfg, j)
			}
			if !reflect.DeepEqual(a.member[j].logical, b.member[j].logical) {
				t.Errorf("%+v: channel %d logical map differs", cfg, j)
			}
		}
	}
}

func TestSplitContiguousBalancesAndCovers(t *testing.T) {
	seq := make([]units.BucketIndex, 10)
	w := make([]float64, 10)
	for i := range seq {
		seq[i] = units.Index(i)
		w[i] = 1
	}
	for parts := 1; parts <= 10; parts++ {
		groups := splitContiguous(seq, w, parts)
		if len(groups) != parts {
			t.Fatalf("parts=%d: %d groups", parts, len(groups))
		}
		total := 0
		for g, grp := range groups {
			if len(grp) == 0 {
				t.Fatalf("parts=%d: group %d empty", parts, g)
			}
			total += len(grp)
		}
		if total != len(seq) {
			t.Fatalf("parts=%d: %d elements covered, want %d", parts, total, len(seq))
		}
	}
	// A pathologically heavy head must not starve later groups.
	w[0] = 1000
	groups := splitContiguous(seq, w, 4)
	for g, grp := range groups {
		if len(grp) == 0 {
			t.Fatalf("heavy head: group %d empty (%v)", g, groups)
		}
	}
}

func ExamplePolicyKind_String() {
	fmt.Println(PolicyReplicated, PolicyIndexData, PolicySkewed)
	// Output: replicated indexdata skewed
}
