package multichannel

import (
	"fmt"
	"math"

	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// member is one physical channel: a cyclic bucket sequence (possibly the
// shared base channel itself) broadcast with a phase shift. Local bucket p
// starts at absolute times phase + start(p) + k·cycle for every integer k
// — the channel has been transmitting its pattern since before time zero,
// so occurrence queries extend the pattern in both directions.
type member struct {
	ch    *channel.Channel
	phase sim.Time
	// logical maps local bucket positions to logical cycle positions;
	// nil means the identity (the member carries the full base cycle).
	logical []units.BucketIndex
}

// place is one broadcast location of a logical bucket: which channel
// carries it and at which local position.
type place struct {
	ch    int
	local units.BucketIndex
}

// Set is an immutable K-channel allocation of one logical broadcast
// cycle. All geometry queries are deterministic; ties between channels
// resolve to the current channel first, then the lowest channel index.
type Set struct {
	cfg    Config
	base   *channel.Channel
	member []member
	// places[i] lists where logical bucket i is broadcast, ordered by
	// channel index.
	places [][]place
}

// Build allocates the base cycle across cfg.Channels physical channels
// according to cfg.Policy. The base channel is never copied or mutated —
// replicated members share it.
func Build(base *channel.Channel, cfg Config) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("multichannel: config is disabled (channels 0); the single-channel path needs no Set")
	}
	s := &Set{cfg: cfg, base: base}
	var err error
	switch cfg.Policy {
	case PolicyReplicated:
		err = s.buildReplicated()
	case PolicyIndexData:
		err = s.buildIndexData()
	case PolicySkewed:
		err = s.buildSkewed()
	default:
		err = fmt.Errorf("multichannel: unknown policy kind %d", cfg.Policy)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// buildReplicated shares the base cycle across K members, phase-staggered
// by cycle/K so any specific bucket's occurrences interleave evenly.
func (s *Set) buildReplicated() error {
	k := s.cfg.Channels
	span := int64(s.base.CycleLen())
	s.member = make([]member, k)
	for j := range s.member {
		s.member[j] = member{ch: s.base, phase: sim.Time(span * int64(j) / int64(k))}
	}
	n := int(s.base.NumBuckets())
	s.places = make([][]place, n)
	for i := range s.places {
		pl := make([]place, k)
		for j := 0; j < k; j++ {
			pl[j] = place{ch: j, local: units.Index(i)}
		}
		s.places[i] = pl
	}
	return nil
}

// splitKinds partitions the base cycle's logical positions into the
// non-data (index-like: index, signature, hash) and data subsequences,
// both in logical order.
func (s *Set) splitKinds() (idxSeq, dataSeq []units.BucketIndex) {
	n := int(s.base.NumBuckets())
	for i := 0; i < n; i++ {
		li := units.Index(i)
		if s.base.Bucket(li).Kind() == wire.KindData {
			dataSeq = append(dataSeq, li)
		} else {
			idxSeq = append(idxSeq, li)
		}
	}
	return idxSeq, dataSeq
}

// subChannel builds a physical cycle from a logical subsequence.
func (s *Set) subChannel(seq []units.BucketIndex) (*channel.Channel, error) {
	buckets := make([]channel.Bucket, len(seq))
	for p, li := range seq {
		buckets[p] = s.base.Bucket(li)
	}
	return channel.Build(buckets)
}

// addPlaces records one member's local positions into the logical
// placement table. Members must be added in channel-index order so each
// places[i] stays ordered by channel.
func (s *Set) addPlaces(ch int, seq []units.BucketIndex) {
	for p, li := range seq {
		s.places[li] = append(s.places[li], place{ch: ch, local: units.Index(p)})
	}
}

// buildIndexData dedicates the first indexChannels members to the index
// buckets (the shared index cycle, phase-staggered among them) and
// partitions the data buckets contiguously, balanced by bytes, across the
// remaining members.
func (s *Set) buildIndexData() error {
	idxSeq, dataSeq := s.splitKinds()
	ic := s.cfg.indexChannels()
	dn := s.cfg.Channels - ic
	if len(idxSeq) == 0 {
		return fmt.Errorf("multichannel: indexdata needs index buckets, but scheme cycle is all data (use replicated or skewed)")
	}
	if len(dataSeq) == 0 {
		return fmt.Errorf("multichannel: indexdata needs data buckets, but scheme cycle has none (use replicated)")
	}
	if len(dataSeq) < dn {
		return fmt.Errorf("multichannel: %d data channels exceed %d data buckets", dn, len(dataSeq))
	}
	idxCh, err := s.subChannel(idxSeq)
	if err != nil {
		return err
	}
	s.places = make([][]place, int(s.base.NumBuckets()))
	ispan := int64(idxCh.CycleLen())
	for j := 0; j < ic; j++ {
		s.member = append(s.member, member{
			ch:      idxCh,
			phase:   sim.Time(ispan * int64(j) / int64(ic)),
			logical: idxSeq,
		})
		s.addPlaces(j, idxSeq)
	}
	weights := make([]float64, len(dataSeq))
	for p, li := range dataSeq {
		weights[p] = float64(s.base.SizeOf(li))
	}
	groups := splitContiguous(dataSeq, weights, dn)
	for d, g := range groups {
		ch, err := s.subChannel(g)
		if err != nil {
			return err
		}
		s.member = append(s.member, member{ch: ch, logical: g})
		s.addPlaces(ic+d, g)
	}
	return nil
}

// buildSkewed partitions the data buckets contiguously across all K
// members by Zipf probability mass over popularity rank (data-bucket
// cycle position, rank 0 hottest — the workload's convention), so the hot
// channel gets few buckets and a short, frequently repeating cycle. Index
// buckets, if the scheme has any, are replicated on every member so the
// protocol's navigation works from any channel.
func (s *Set) buildSkewed() error {
	idxSeq, dataSeq := s.splitKinds()
	k := s.cfg.Channels
	if len(dataSeq) < k {
		return fmt.Errorf("multichannel: %d channels exceed %d data buckets for the skewed partition", k, len(dataSeq))
	}
	weights := make([]float64, len(dataSeq))
	for r := range weights {
		weights[r] = zipfWeight(r, s.cfg.Skew)
	}
	groups := splitContiguous(dataSeq, weights, k)
	s.places = make([][]place, int(s.base.NumBuckets()))
	for j, g := range groups {
		seq := mergeLogical(idxSeq, g)
		ch, err := s.subChannel(seq)
		if err != nil {
			return err
		}
		s.member = append(s.member, member{ch: ch, logical: seq})
		s.addPlaces(j, seq)
	}
	return nil
}

// zipfWeight is the unnormalized Zipf(s) mass of rank r (0-based); s=0
// degenerates to equal mass.
func zipfWeight(r int, skew float64) float64 {
	if skew == 0 {
		return 1
	}
	return math.Pow(float64(r+1), -skew)
}

// splitContiguous cuts seq into parts contiguous groups whose weights are
// as balanced as the greedy quota walk allows. Every group is non-empty:
// the walk always takes at least one element and leaves enough for the
// remaining groups. Deterministic in its inputs.
func splitContiguous(seq []units.BucketIndex, weights []float64, parts int) [][]units.BucketIndex {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	groups := make([][]units.BucketIndex, 0, parts)
	start := 0
	cum := 0.0
	for g := 0; g < parts; g++ {
		quota := total * float64(g+1) / float64(parts)
		end := start + 1 // at least one element per group
		cum += weights[start]
		for end < len(seq)-(parts-g-1) && cum+weights[end]/2 < quota {
			cum += weights[end]
			end++
		}
		if g == parts-1 {
			end = len(seq)
		}
		groups = append(groups, seq[start:end])
		start = end
	}
	return groups
}

// mergeLogical interleaves two logical-order subsequences back into one
// logical-order sequence.
func mergeLogical(a, b []units.BucketIndex) []units.BucketIndex {
	out := make([]units.BucketIndex, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// --- geometry queries ------------------------------------------------

// K returns the number of physical channels.
func (s *Set) K() int { return len(s.member) }

// SwitchCost returns the receiver's channel-switch cost in bytes.
func (s *Set) SwitchCost() units.ByteCount { return s.cfg.SwitchCost }

// Config returns the allocation configuration.
func (s *Set) Config() Config { return s.cfg }

// Base returns the logical broadcast cycle the allocation carries.
func (s *Set) Base() *channel.Channel { return s.base }

// NumLogical returns the number of logical buckets per cycle.
func (s *Set) NumLogical() units.BucketCount { return s.base.NumBuckets() }

// ChannelCycle returns channel j's physical cycle length in bytes.
func (s *Set) ChannelCycle(j int) units.ByteCount { return s.member[j].ch.CycleLen() }

// Logical maps a channel-local bucket position to its logical cycle
// position.
//
//airlint:hotpath
func (s *Set) Logical(ch int, local units.BucketIndex) units.BucketIndex {
	m := &s.member[ch]
	if m.logical == nil {
		return local
	}
	return m.logical[local]
}

// SizeOfLocal returns the byte size of the bucket at a channel-local
// position.
//
//airlint:hotpath
func (s *Set) SizeOfLocal(ch int, local units.BucketIndex) units.ByteCount {
	return s.member[ch].ch.SizeOf(local)
}

// EndGiven returns the finish time of the local bucket on channel ch when
// its broadcast starts at the given time.
//
//airlint:hotpath
func (s *Set) EndGiven(ch int, local units.BucketIndex, start sim.Time) sim.Time {
	return s.member[ch].ch.EndGiven(local, start)
}

// FirstBucket returns the earliest complete bucket across all channels
// beginning at or after t — the multichannel initial wait. The initial
// tune is free of switch cost (the receiver is not locked to any channel
// yet); ties go to the lowest channel index.
//
//airlint:hotpath
func (s *Set) FirstBucket(t sim.Time) (ch int, local units.BucketIndex, start sim.Time) {
	ch = -1
	for j := range s.member {
		idx, st := s.member[j].nextBucketAt(t)
		if ch < 0 || st < start {
			ch, local, start = j, idx, st
		}
	}
	return ch, local, start
}

// NextOnChannel returns the next complete bucket on channel ch beginning
// at or after t.
//
//airlint:hotpath
func (s *Set) NextOnChannel(ch int, t sim.Time) (units.BucketIndex, sim.Time) {
	return s.member[ch].nextBucketAt(t)
}

// NextCycleStartOn returns channel ch's next cycle start at or after t.
//
//airlint:hotpath
func (s *Set) NextCycleStartOn(ch int, t sim.Time) sim.Time {
	return s.member[ch].nextCycleStart(t)
}

// NextFeasible returns the earliest feasible broadcast of the logical
// bucket target for a receiver on channel cur that finished reading at
// time end: occurrences on cur qualify from end, occurrences on any other
// channel from end plus the switch cost (the retune happens while
// dozing). Ties prefer staying on cur, then the lowest channel index.
//
//airlint:hotpath
func (s *Set) NextFeasible(target units.BucketIndex, end sim.Time, cur int) (ch int, local units.BucketIndex, start sim.Time) {
	cost := s.cfg.SwitchCost.Span()
	ch = -1
	for _, pl := range s.places[target] {
		earliest := end
		if pl.ch != cur {
			earliest = end + cost
		}
		t := s.member[pl.ch].nextOccurrence(pl.local, earliest)
		better := ch < 0 || t < start || (t == start && pl.ch == cur && ch != cur)
		if better {
			ch, local, start = pl.ch, pl.local, t
		}
	}
	return ch, local, start
}

// --- member arithmetic -----------------------------------------------
//
// All phase-shifted occurrence math runs on raw int64 byte-clock values
// and re-enters sim.Time only at the boundary: the cyclic pattern extends
// to all integers k, and phase < cycle keeps every correction within one
// period.

// nextBucketAt returns the member's next complete bucket at or after t.
//
//airlint:hotpath
func (m *member) nextBucketAt(t sim.Time) (units.BucketIndex, sim.Time) {
	tl := t - m.phase
	var shift sim.Time
	if tl < 0 {
		p := m.ch.CycleLen().Span()
		tl += p
		shift = -p
	}
	idx, start := m.ch.NextBucketAt(tl)
	return idx, start + m.phase + shift
}

// nextOccurrence returns the absolute start of the next broadcast of the
// member's local bucket at or after t.
//
//airlint:hotpath
func (m *member) nextOccurrence(local units.BucketIndex, t sim.Time) sim.Time {
	start0 := int64(m.ch.StartInCycle(local))
	p := int64(m.ch.CycleLen())
	d := int64(t-m.phase) - start0
	var k int64
	if d > 0 {
		k = (d + p - 1) / p
	} else {
		k = -((-d) / p)
	}
	return m.phase + sim.Time(start0+k*p)
}

// nextCycleStart returns the member's next cycle start at or after t.
//
//airlint:hotpath
func (m *member) nextCycleStart(t sim.Time) sim.Time {
	p := int64(m.ch.CycleLen())
	d := int64(t - m.phase)
	var k int64
	if d > 0 {
		k = (d + p - 1) / p
	} else {
		k = -((-d) / p)
	}
	return m.phase + sim.Time(k*p)
}
