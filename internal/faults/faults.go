// Package faults is the deterministic unreliable-channel layer: it decides,
// per bucket read, whether the receiver got a usable copy of the bucket.
//
// The paper's testbed assumes a perfect air interface, but its own framing —
// wireless links with limited bandwidth and doze-mode receivers — makes link
// errors the first scenario a deployed system must survive. This package
// opens that dimension for every scheme while preserving the §7 determinism
// contract: all fault randomness is a pure function of
// (seed, shard, request, probe) drawn from the dedicated RNG substream
// splitmix(seed, shard, "faults"), so enabling faults never perturbs the
// arrival process, a run's Result is a pure function of
// (seed, shards, faultcfg), and raising an error rate only adds corrupted
// reads at coordinates that were already drawn (the per-read uniforms are
// shared across rates, which is what makes degradation sweeps monotone).
//
// Three error models are provided:
//
//   - ModelIID: each bucket read fails independently with the probability a
//     bit-error-rate BER implies for its size, 1-(1-BER)^(8·bytes) — larger
//     buckets are likelier casualties, as on a real link;
//   - ModelGilbertElliott: the classic two-state burst model (Gilbert 1960,
//     Elliott 1963): a hidden good/bad channel state evolves per read and
//     each state corrupts with its own probability, clustering losses;
//   - ModelDrop: whole-bucket drop with a flat per-read probability — the
//     "error rate" axis of the degradation experiments.
//
// Detection is the wire layer's job (CRC32C sealed frames, wire.Seal /
// wire.Verify); recovery is the access layer's (access.WalkRecover). This
// package only supplies the deterministic loss process.
package faults

import (
	"fmt"
	"math"

	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// ModelKind selects the error process applied to bucket reads. It is a
// closed enum: the airlint exhaustive analyzer requires every switch over
// it to cover all constants or carry a default.
type ModelKind uint8

const (
	// ModelNone disables fault injection; the zero Config is a no-op.
	ModelNone ModelKind = iota
	// ModelIID corrupts each read independently with the BER-derived
	// per-bucket probability 1-(1-BER)^(8·size).
	ModelIID
	// ModelGilbertElliott corrupts reads from a two-state (good/bad)
	// Markov burst process.
	ModelGilbertElliott
	// ModelDrop drops each bucket read independently with DropRate.
	ModelDrop
)

// String returns the model's CLI name.
func (k ModelKind) String() string {
	switch k {
	case ModelNone:
		return "none"
	case ModelIID:
		return "iid"
	case ModelGilbertElliott:
		return "ge"
	case ModelDrop:
		return "drop"
	default:
		return fmt.Sprintf("model(%d)", uint8(k))
	}
}

// ParseModel maps a CLI name to its ModelKind.
func ParseModel(s string) (ModelKind, error) {
	switch s {
	case "", "none":
		return ModelNone, nil
	case "iid":
		return ModelIID, nil
	case "ge", "gilbert-elliott":
		return ModelGilbertElliott, nil
	case "drop":
		return ModelDrop, nil
	default:
		return ModelNone, fmt.Errorf("faults: unknown error model %q (have none, iid, ge, drop)", s)
	}
}

// RecoveryKind selects the client's re-tune policy after a corrupted read.
// Like ModelKind it is a closed enum under the exhaustive analyzer.
type RecoveryKind uint8

const (
	// RecoverRestart (the zero value) restarts the protocol at the next
	// complete bucket: the client keeps listening and re-acquires the next
	// index segment the protocol itself would find (every scheme's buckets
	// carry offsets to their next index).
	RecoverRestart RecoveryKind = iota
	// RecoverNextCycle dozes until the next broadcast-cycle start and
	// restarts there — cheapest in tuning (the wait is spent dozing),
	// costliest in access time.
	RecoverNextCycle
)

// String returns the policy's CLI name.
func (k RecoveryKind) String() string {
	switch k {
	case RecoverRestart:
		return "restart"
	case RecoverNextCycle:
		return "cycle"
	default:
		return fmt.Sprintf("recovery(%d)", uint8(k))
	}
}

// ParseRecovery maps a CLI name to its RecoveryKind.
func ParseRecovery(s string) (RecoveryKind, error) {
	switch s {
	case "", "restart":
		return RecoverRestart, nil
	case "cycle":
		return RecoverNextCycle, nil
	default:
		return RecoverRestart, fmt.Errorf("faults: unknown recovery policy %q (have restart, cycle)", s)
	}
}

// Config parameterizes the unreliable channel and the client recovery
// policy. The zero value disables fault injection entirely.
type Config struct {
	// Model selects the error process; ModelNone disables injection.
	Model ModelKind

	// BER is ModelIID's bit error rate in [0,1).
	BER float64

	// DropRate is ModelDrop's per-read drop probability in [0,1).
	DropRate float64

	// GoodToBad and BadToGood are ModelGilbertElliott's per-read state
	// transition probabilities; ErrGood and ErrBad are the per-read
	// corruption probabilities inside each state. The defaults chosen by
	// FromRate (GoodToBad 0.01, BadToGood 0.25) give mean bursts of four
	// reads separated by ~100-read quiet spells.
	GoodToBad, BadToGood float64
	ErrGood, ErrBad      float64

	// Recovery selects the client's re-tune policy after a corrupted read.
	Recovery RecoveryKind

	// MaxRetries bounds corrupted reads tolerated per request; past the
	// bound the request is abandoned as an unrecoverable miss. 0 means
	// unbounded (every request eventually completes).
	MaxRetries int
}

// Enabled reports whether fault injection is active.
func (c Config) Enabled() bool { return c.Model != ModelNone }

// Rate returns the model's headline error rate, for experiment labels.
func (c Config) Rate() float64 {
	switch c.Model {
	case ModelNone:
		return 0
	case ModelIID:
		return c.BER
	case ModelGilbertElliott:
		return c.ErrBad
	case ModelDrop:
		return c.DropRate
	default:
		return 0
	}
}

// FromRate builds a Config for the named model with one headline rate:
// the BER for ModelIID, the drop probability for ModelDrop, and the
// bad-state corruption probability (with default burst geometry) for
// ModelGilbertElliott.
func FromRate(model ModelKind, rate float64) Config {
	switch model {
	case ModelNone:
		return Config{}
	case ModelIID:
		return Config{Model: ModelIID, BER: rate}
	case ModelGilbertElliott:
		return Config{Model: ModelGilbertElliott, GoodToBad: 0.01, BadToGood: 0.25, ErrBad: rate}
	case ModelDrop:
		return Config{Model: ModelDrop, DropRate: rate}
	default:
		return Config{}
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	inUnit := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s %v outside [0,1]", name, v)
		}
		return nil
	}
	switch c.Model {
	case ModelNone, ModelIID, ModelGilbertElliott, ModelDrop:
	default:
		return fmt.Errorf("faults: unknown model kind %d", c.Model)
	}
	switch c.Recovery {
	case RecoverRestart, RecoverNextCycle:
	default:
		return fmt.Errorf("faults: unknown recovery kind %d", c.Recovery)
	}
	if c.BER < 0 || c.BER >= 1 {
		return fmt.Errorf("faults: bit error rate %v outside [0,1)", c.BER)
	}
	if c.DropRate < 0 || c.DropRate >= 1 {
		return fmt.Errorf("faults: drop rate %v outside [0,1)", c.DropRate)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"good->bad transition", c.GoodToBad},
		{"bad->good transition", c.BadToGood},
		{"good-state error rate", c.ErrGood},
		{"bad-state error rate", c.ErrBad},
	} {
		if err := inUnit(p.name, p.v); err != nil {
			return err
		}
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("faults: max retries %d must be non-negative", c.MaxRetries)
	}
	return nil
}

// Injector is one shard's deterministic fault process. Every decision is a
// pure function of (base stream seed, request serial, probe index), so two
// injectors built from the same (cfg, seed, shard) replay the same fault
// pattern regardless of scheduling, and the byte-driven airborne clients
// see exactly the corruptions the scheme clients saw.
type Injector struct {
	cfg  Config
	base uint64 // splitmix(seed, shard, "faults")
	req  uint64 // request serial within the shard
	bad  bool   // Gilbert–Elliott channel state for the current request
}

// New returns the injector for one shard's substream. seed and shard are
// the simulation seed and shard index; the sequential (unsharded) path is
// shard 0, matching the one-shard engine so the two stay byte-identical.
func New(cfg Config, seed int64, shard int) *Injector {
	return &Injector{cfg: cfg, base: uint64(sim.StreamSeed(seed, shard, "faults"))}
}

// Distinct odd gammas keep the request, probe and draw counters from
// aliasing in the SplitMix64 finalizer's input.
const (
	gammaReq   = 0x9E3779B97F4A7C15
	gammaProbe = 0xC2B2AE3D27D4EB4F
	gammaDraw  = 0x165667B19E3779F9
)

// mix64 is the SplitMix64 output finalizer.
//
//airlint:hotpath
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// uniform returns the [0,1) variate at counter coordinate (req, probe,
// draw). Draw 0 is the Gilbert–Elliott state transition, draw 1 the
// corruption decision, draw 2 the per-request initial state; sharing draw
// 1 across models and rates couples sweeps (a read corrupted at rate p is
// still corrupted at every rate above p).
//
//airlint:hotpath
func (in *Injector) uniform(probe, draw uint64) float64 {
	x := in.base + in.req*gammaReq + probe*gammaProbe + draw*gammaDraw
	return float64(mix64(x)>>11) / (1 << 53)
}

// StartRequest advances the injector to the next request's fault stream.
// The Gilbert–Elliott state is drawn fresh from the chain's stationary
// distribution: requests resolve independently in the simulator, so each
// carries its own burst process (DESIGN.md §7).
//
//airlint:hotpath
func (in *Injector) StartRequest() {
	in.req++
	if in.cfg.Model != ModelGilbertElliott {
		return
	}
	denom := in.cfg.GoodToBad + in.cfg.BadToGood
	if denom <= 0 {
		in.bad = false
		return
	}
	in.bad = in.uniform(^uint64(0), 2) < in.cfg.GoodToBad/denom
}

// MangleCopy returns a copy of an encoded (typically wire.Seal-ed) frame
// with one deterministically chosen bit flipped — the byte-level image of
// the corruption Corrupt reported at the same probe coordinate. Any single
// flipped bit is guaranteed caught by the CRC32C trailer (wire.Verify), so
// byte-driven clients detect exactly the reads the injector corrupted.
func (in *Injector) MangleCopy(probe int, frame []byte) []byte {
	out := make([]byte, len(frame))
	copy(out, frame)
	if len(out) == 0 {
		return out
	}
	bit := mix64(in.base+in.req*gammaReq+uint64(probe)*gammaProbe+3*gammaDraw) % uint64(8*len(out))
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// Corrupt decides whether the probe-th bucket read of the current request
// (of the given encoded size) reached the receiver unusable. probe counts
// from 0 within the request.
//
//airlint:hotpath
func (in *Injector) Corrupt(probe int, size units.ByteCount) bool {
	p := uint64(probe)
	switch in.cfg.Model {
	case ModelNone:
		return false
	case ModelIID:
		if in.cfg.BER <= 0 {
			return false
		}
		// Per-bucket failure probability implied by the bit error rate:
		// 1-(1-BER)^bits, computed stably in log space.
		bits := 8 * float64(size)
		pb := -math.Expm1(bits * math.Log1p(-in.cfg.BER))
		return in.uniform(p, 1) < pb
	case ModelGilbertElliott:
		// Evolve the channel state, then corrupt by the new state's rate.
		if in.bad {
			if in.uniform(p, 0) < in.cfg.BadToGood {
				in.bad = false
			}
		} else {
			if in.uniform(p, 0) < in.cfg.GoodToBad {
				in.bad = true
			}
		}
		rate := in.cfg.ErrGood
		if in.bad {
			rate = in.cfg.ErrBad
		}
		if rate <= 0 {
			return false
		}
		return in.uniform(p, 1) < rate
	case ModelDrop:
		if in.cfg.DropRate <= 0 {
			return false
		}
		return in.uniform(p, 1) < in.cfg.DropRate
	default:
		return false
	}
}
