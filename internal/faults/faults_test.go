package faults

import (
	"testing"

	"github.com/airindex/airindex/internal/units"
)

func decisions(in *Injector, requests, probes int, size units.ByteCount) []bool {
	var out []bool
	for r := 0; r < requests; r++ {
		in.StartRequest()
		for p := 0; p < probes; p++ {
			out = append(out, in.Corrupt(p, size))
		}
	}
	return out
}

func TestZeroConfigNeverCorrupts(t *testing.T) {
	cfgs := []Config{
		{},
		{Model: ModelIID},
		{Model: ModelDrop},
		{Model: ModelGilbertElliott, GoodToBad: 0.5, BadToGood: 0.5},
	}
	for _, cfg := range cfgs {
		if cfg.Model != ModelNone && !cfg.Enabled() {
			t.Errorf("config %+v should report enabled", cfg)
		}
		in := New(cfg, 42, 0)
		for i, d := range decisions(in, 50, 20, 505) {
			if d {
				t.Fatalf("cfg %+v corrupted read %d at zero rates", cfg, i)
			}
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := FromRate(ModelDrop, 0.1)
	a := decisions(New(cfg, 42, 3), 40, 25, 505)
	b := decisions(New(cfg, 42, 3), 40, 25, 505)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (cfg, seed, shard) diverged at read %d", i)
		}
	}
	c := decisions(New(cfg, 42, 4), 40, 25, 505)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("shards 3 and 4 produced identical fault streams; substreams are correlated")
	}
}

// TestRateCoupling: the drop model shares its per-read uniform across
// rates, so the corrupted-read set at a lower rate is a subset of the set
// at any higher rate — the property that makes degradation sweeps
// monotone.
func TestRateCoupling(t *testing.T) {
	lo := decisions(New(FromRate(ModelDrop, 0.02), 7, 0), 100, 10, 505)
	hi := decisions(New(FromRate(ModelDrop, 0.1), 7, 0), 100, 10, 505)
	nLo, nHi := 0, 0
	for i := range lo {
		if lo[i] {
			nLo++
			if !hi[i] {
				t.Fatalf("read %d corrupted at rate 0.02 but clean at 0.1", i)
			}
		}
		if hi[i] {
			nHi++
		}
	}
	if nLo == 0 || nHi <= nLo {
		t.Fatalf("expected 0 < corruptions(0.02)=%d < corruptions(0.1)=%d", nLo, nHi)
	}
}

// TestIIDSizeDerived: under a fixed BER, bigger buckets must be corrupted
// more often than small ones.
func TestIIDSizeDerived(t *testing.T) {
	cfg := FromRate(ModelIID, 0.0001)
	small := decisions(New(cfg, 11, 0), 300, 10, 64)
	large := decisions(New(cfg, 11, 0), 300, 10, 4096)
	count := func(ds []bool) int {
		n := 0
		for _, d := range ds {
			if d {
				n++
			}
		}
		return n
	}
	ns, nl := count(small), count(large)
	if nl <= ns {
		t.Fatalf("BER-derived corruption should grow with bucket size: 64B -> %d, 4096B -> %d", ns, nl)
	}
}

// TestGilbertElliottBursts: with a sticky bad state and ErrBad=1, ErrGood=0,
// corruptions must arrive in runs longer than i.i.d. coin flips would give.
func TestGilbertElliottBursts(t *testing.T) {
	cfg := Config{Model: ModelGilbertElliott, GoodToBad: 0.02, BadToGood: 0.2, ErrBad: 1}
	in := New(cfg, 5, 0)
	in.StartRequest()
	total, corrupted, runs := 20000, 0, 0
	prev := false
	for p := 0; p < total; p++ {
		d := in.Corrupt(p, 505)
		if d {
			corrupted++
			if !prev {
				runs++
			}
		}
		prev = d
	}
	if corrupted == 0 {
		t.Fatal("burst model produced no corruption")
	}
	meanRun := float64(corrupted) / float64(runs)
	// Stationary bad-state dwell time is 1/BadToGood = 5 reads; i.i.d.
	// corruption at the same marginal rate would give runs barely above 1.
	if meanRun < 2 {
		t.Fatalf("mean burst length %.2f; expected clustered losses (>= 2)", meanRun)
	}
}

func TestValidate(t *testing.T) {
	good := []Config{
		{},
		FromRate(ModelIID, 0.001),
		FromRate(ModelGilbertElliott, 0.5),
		FromRate(ModelDrop, 0.1),
		{Model: ModelDrop, DropRate: 0.5, Recovery: RecoverNextCycle, MaxRetries: 8},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	bad := []Config{
		{Model: ModelIID, BER: 1},
		{Model: ModelIID, BER: -0.1},
		{Model: ModelDrop, DropRate: 1.5},
		{Model: ModelGilbertElliott, GoodToBad: 2},
		{Model: ModelGilbertElliott, ErrBad: -1},
		{Model: ModelKind(99)},
		{Recovery: RecoveryKind(99)},
		{MaxRetries: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
}

func TestParseAndString(t *testing.T) {
	for _, k := range []ModelKind{ModelNone, ModelIID, ModelGilbertElliott, ModelDrop} {
		got, err := ParseModel(k.String())
		if err != nil || got != k {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("ParseModel(bogus) should fail")
	}
	for _, k := range []RecoveryKind{RecoverRestart, RecoverNextCycle} {
		got, err := ParseRecovery(k.String())
		if err != nil || got != k {
			t.Errorf("ParseRecovery(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseRecovery("bogus"); err == nil {
		t.Error("ParseRecovery(bogus) should fail")
	}
	if got := ModelKind(99).String(); got != "model(99)" {
		t.Errorf("unknown model String() = %q", got)
	}
	if got := RecoveryKind(99).String(); got != "recovery(99)" {
		t.Errorf("unknown recovery String() = %q", got)
	}
}

func TestFromRateHeadline(t *testing.T) {
	for _, k := range []ModelKind{ModelIID, ModelGilbertElliott, ModelDrop} {
		cfg := FromRate(k, 0.05)
		if cfg.Model != k {
			t.Errorf("FromRate(%v) model = %v", k, cfg.Model)
		}
		if cfg.Rate() != 0.05 {
			t.Errorf("FromRate(%v).Rate() = %v, want 0.05", k, cfg.Rate())
		}
	}
	if cfg := FromRate(ModelNone, 0.5); cfg.Enabled() || cfg.Rate() != 0 {
		t.Errorf("FromRate(ModelNone) should be disabled, got %+v", cfg)
	}
}

func TestMangleCopyFlipsOneBit(t *testing.T) {
	in := New(FromRate(ModelDrop, 0.1), 42, 0)
	in.StartRequest()
	frame := make([]byte, 64)
	for i := range frame {
		frame[i] = byte(i)
	}
	got := in.MangleCopy(3, frame)
	if len(got) != len(frame) {
		t.Fatalf("length changed: %d -> %d", len(frame), len(got))
	}
	diffBits := 0
	for i := range frame {
		x := frame[i] ^ got[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("MangleCopy flipped %d bits, want exactly 1", diffBits)
	}
	again := in.MangleCopy(3, frame)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("MangleCopy is not deterministic at fixed coordinates")
		}
	}
	if empty := in.MangleCopy(0, nil); len(empty) != 0 {
		t.Fatal("MangleCopy(nil) should return empty")
	}
}
