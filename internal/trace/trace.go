// Package trace records the probe-by-probe behaviour of an access
// protocol: every tune-in a client makes, what bucket it read, how long it
// dozed, and the running access/tuning accounting. Traces drive the
// step-level protocol tests and cmd/airtrace's walkthrough output; they
// are also the easiest way to understand *why* a scheme has the tuning
// time it has.
package trace

import (
	"fmt"
	"io"
	"strings"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Probe is one active-mode bucket read.
type Probe struct {
	// Index is the bucket's position within the broadcast cycle.
	Index units.BucketIndex
	// Kind is the bucket's role.
	Kind wire.Kind
	// Start and End are the absolute byte-times of the read.
	Start, End sim.Time
	// Dozed is how long the client slept before this read (0 for
	// consecutive reads).
	Dozed sim.Time
	// Bytes is the bucket size (the read's tuning cost).
	Bytes units.ByteCount
}

// Trace is a full query walkthrough.
type Trace struct {
	// Key is the requested key.
	Key uint64
	// Arrival is the request time.
	Arrival sim.Time
	// Probes are the client's bucket reads in order.
	Probes []Probe
	// Result is the final accounting, identical to access.Walk's.
	Result access.Result
}

// recorder wraps a client and observes the runner's callbacks.
type recorder struct {
	inner access.Client
	ch    *channel.Channel
	tr    *Trace
	last  sim.Time // end of the previous read; arrival before the first
}

func (r *recorder) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	size := r.ch.SizeOf(i)
	start := end - size.Span()
	dozed := start - r.last
	if dozed < 0 {
		dozed = 0
	}
	r.tr.Probes = append(r.tr.Probes, Probe{
		Index: i,
		Kind:  r.ch.Bucket(i).Kind(),
		Start: start,
		End:   end,
		Dozed: dozed,
		Bytes: size,
	})
	r.last = end
	return r.inner.OnBucket(i, end)
}

// Run executes one traced query against a broadcast.
func Run(bc access.Broadcast, key uint64, arrival sim.Time) (*Trace, error) {
	tr := &Trace{Key: key, Arrival: arrival}
	rec := &recorder{inner: bc.NewClient(key), ch: bc.Channel(), tr: tr, last: arrival}
	res, err := access.Walk(bc.Channel(), rec, arrival, 0)
	if err != nil {
		return nil, err
	}
	tr.Result = res
	return tr, nil
}

// DozeTotal returns the total time spent dozing.
func (t *Trace) DozeTotal() sim.Time {
	var d sim.Time
	for _, p := range t.Probes {
		d += p.Dozed
	}
	return d
}

// Write renders the walkthrough as a readable transcript.
func (t *Trace) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "query key=%d arrival=%d\n", t.Key, t.Arrival); err != nil {
		return err
	}
	for n, p := range t.Probes {
		var doze string
		if p.Dozed > 0 {
			doze = fmt.Sprintf("doze %8d bytes, then ", int64(p.Dozed))
		} else {
			doze = strings.Repeat(" ", 26)
		}
		if _, err := fmt.Fprintf(w, "  probe %2d: %sread bucket %6d (%-9s %4dB) at t=%d\n",
			n+1, doze, p.Index, p.Kind, p.Bytes, int64(p.Start)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  => found=%v access=%d tuning=%d probes=%d (dozed %.3f%% of the wait)\n",
		t.Result.Found, t.Result.Access, t.Result.Tuning, t.Result.Probes,
		100*float64(t.DozeTotal())/float64(t.Result.Access))
	return err
}
