package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/flat"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

func dataset(t *testing.T, n int) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTraceMatchesWalkAccounting(t *testing.T) {
	ds := dataset(t, 500)
	bc, err := dist.Build(ds, dist.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 100; i++ {
		key := ds.KeyAt(rng.Intn(ds.Len()))
		arrival := sim.Time(rng.Int63n(int64(bc.Channel().CycleLen())))
		tr, err := Run(bc, key, arrival)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := access.Walk(bc.Channel(), bc.NewClient(key), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Result != plain {
			t.Fatalf("traced result %+v != plain walk %+v", tr.Result, plain)
		}
		if len(tr.Probes) != plain.Probes {
			t.Fatalf("recorded %d probes, result says %d", len(tr.Probes), plain.Probes)
		}
	}
}

func TestTraceAccountingIdentities(t *testing.T) {
	ds := dataset(t, 300)
	bc, err := dist.Build(ds, dist.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(bc, ds.KeyAt(250), 7777)
	if err != nil {
		t.Fatal(err)
	}
	var tuned units.ByteCount
	for i, p := range tr.Probes {
		tuned += p.Bytes
		if p.End-p.Start != p.Bytes.Span() {
			t.Fatalf("probe %d: duration != size", i)
		}
		if i > 0 && p.Start < tr.Probes[i-1].End {
			t.Fatalf("probe %d overlaps previous", i)
		}
	}
	if tuned != tr.Result.Tuning {
		t.Fatalf("probe bytes %d != tuning %d", tuned, tr.Result.Tuning)
	}
	// initial wait + sum(dozed) + sum(read) == access
	initial := tr.Probes[0].Start - tr.Arrival - tr.Probes[0].Dozed
	if initial != 0 {
		// The first probe's doze includes the initial wait by construction.
		t.Fatalf("initial wait double-counted: %d", initial)
	}
	if units.Elapsed(0, tr.DozeTotal())+tuned != tr.Result.Access {
		t.Fatalf("doze %d + tune %d != access %d", tr.DozeTotal(), tuned, tr.Result.Access)
	}
}

func TestTraceFlatNeverDozes(t *testing.T) {
	ds := dataset(t, 100)
	bc, err := flat.Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(bc, ds.KeyAt(50), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr.Probes {
		if i > 0 && p.Dozed != 0 {
			t.Fatalf("flat client dozed %d before probe %d", p.Dozed, i)
		}
	}
}

func TestTraceWriteTranscript(t *testing.T) {
	ds := dataset(t, 200)
	bc, err := dist.Build(ds, dist.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(bc, ds.KeyAt(123), 999)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"query key=", "probe  1", "=> found=true", "doze"} {
		if !strings.Contains(out, want) {
			t.Fatalf("transcript missing %q:\n%s", want, out)
		}
	}
}
