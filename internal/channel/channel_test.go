package channel

import (
	"testing"
	"testing/quick"

	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// fakeBucket is a minimal Bucket for channel arithmetic tests.
type fakeBucket struct {
	size int
	kind wire.Kind
}

func (b fakeBucket) Size() units.ByteCount { return units.Bytes(b.size) }
func (b fakeBucket) Kind() wire.Kind       { return b.kind }
func (b fakeBucket) Encode() []byte        { return make([]byte, b.size) }

func buildTest(t *testing.T, sizes ...int) *Channel {
	t.Helper()
	bs := make([]Bucket, len(sizes))
	for i, s := range sizes {
		bs[i] = fakeBucket{size: s, kind: wire.KindData}
	}
	c, err := Build(bs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildOffsets(t *testing.T) {
	c := buildTest(t, 10, 20, 30)
	if c.CycleLen() != 60 {
		t.Fatalf("cycle %d, want 60", c.CycleLen())
	}
	wantStarts := []units.ByteOffset{0, 10, 30}
	for i, w := range wantStarts {
		if c.StartInCycle(units.Index(i)) != w {
			t.Fatalf("start[%d] = %d, want %d", i, c.StartInCycle(units.Index(i)), w)
		}
	}
	if c.NumBuckets() != 3 {
		t.Fatalf("NumBuckets = %d", c.NumBuckets())
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("empty channel accepted")
	}
	if _, err := Build([]Bucket{fakeBucket{size: 0}}); err == nil {
		t.Fatal("zero-size bucket accepted")
	}
	if _, err := Build([]Bucket{nil}); err == nil {
		t.Fatal("nil bucket accepted")
	}
}

func TestNextBucketAt(t *testing.T) {
	c := buildTest(t, 10, 20, 30)
	cases := []struct {
		t         sim.Time
		wantIdx   units.BucketIndex
		wantStart sim.Time
	}{
		{0, 0, 0},          // exactly at cycle start
		{1, 1, 10},         // mid bucket 0: wait for bucket 1
		{10, 1, 10},        // exactly at bucket 1 start
		{29, 2, 30},        // just before bucket 2
		{30, 2, 30},        // at bucket 2 start
		{31, 0, 60},        // mid last bucket: wrap to next cycle
		{59, 0, 60},        // end of cycle
		{60, 0, 60},        // next cycle start
		{61, 1, 70},        // second cycle, mid bucket 0
		{60 + 45, 0, 120},  // second cycle, mid last bucket
		{600, 0, 600},      // tenth cycle boundary
		{615, 2, 600 + 30}, // tenth cycle, between buckets
	}
	for _, cse := range cases {
		idx, start := c.NextBucketAt(cse.t)
		if idx != cse.wantIdx || start != cse.wantStart {
			t.Errorf("NextBucketAt(%d) = (%d, %d), want (%d, %d)", cse.t, idx, start, cse.wantIdx, cse.wantStart)
		}
	}
}

func TestInFlightAt(t *testing.T) {
	c := buildTest(t, 10, 20, 30)
	cases := []struct {
		t         sim.Time
		wantIdx   units.BucketIndex
		wantStart sim.Time
	}{
		{0, 0, 0},
		{9, 0, 0},
		{10, 1, 10},
		{29, 1, 10},
		{30, 2, 30},
		{59, 2, 30},
		{60, 0, 60},
		{75, 1, 70},
	}
	for _, cse := range cases {
		idx, start := c.InFlightAt(cse.t)
		if idx != cse.wantIdx || start != cse.wantStart {
			t.Errorf("InFlightAt(%d) = (%d, %d), want (%d, %d)", cse.t, idx, start, cse.wantIdx, cse.wantStart)
		}
	}
}

func TestNextOccurrence(t *testing.T) {
	c := buildTest(t, 10, 20, 30)
	if got := c.NextOccurrence(1, 0); got != 10 {
		t.Fatalf("NextOccurrence(1, 0) = %d, want 10", got)
	}
	if got := c.NextOccurrence(1, 10); got != 10 {
		t.Fatalf("NextOccurrence(1, 10) = %d, want 10 (inclusive)", got)
	}
	if got := c.NextOccurrence(1, 11); got != 70 {
		t.Fatalf("NextOccurrence(1, 11) = %d, want 70", got)
	}
	if got := c.NextOccurrence(0, 35); got != 60 {
		t.Fatalf("NextOccurrence(0, 35) = %d, want 60", got)
	}
}

func TestNextCycleStart(t *testing.T) {
	c := buildTest(t, 10, 20, 30)
	for _, cse := range []struct{ t, want sim.Time }{
		{0, 0}, {1, 60}, {59, 60}, {60, 60}, {61, 120}, {600, 600},
	} {
		if got := c.NextCycleStart(cse.t); got != cse.want {
			t.Errorf("NextCycleStart(%d) = %d, want %d", cse.t, got, cse.want)
		}
	}
}

func TestEndGiven(t *testing.T) {
	c := buildTest(t, 10, 20, 30)
	if got := c.EndGiven(2, 630); got != 660 {
		t.Fatalf("EndGiven = %d, want 660", got)
	}
}

func TestKindAccounting(t *testing.T) {
	bs := []Bucket{
		fakeBucket{size: 8, kind: wire.KindIndex},
		fakeBucket{size: 100, kind: wire.KindData},
		fakeBucket{size: 8, kind: wire.KindIndex},
		fakeBucket{size: 100, kind: wire.KindData},
	}
	c, err := Build(bs)
	if err != nil {
		t.Fatal(err)
	}
	if c.CountKind(wire.KindIndex) != 2 || c.CountKind(wire.KindData) != 2 {
		t.Fatal("CountKind wrong")
	}
	if c.BytesOfKind(wire.KindIndex) != 16 || c.BytesOfKind(wire.KindData) != 200 {
		t.Fatal("BytesOfKind wrong")
	}
}

// Property: for any bucket sizes and any time, NextBucketAt returns a
// bucket boundary at or after t, no further than one full cycle away, and
// the returned start is genuinely the start of the returned index.
func TestQuickNextBucketAt(t *testing.T) {
	f := func(rawSizes []uint8, rawT uint32) bool {
		var bs []Bucket
		for _, s := range rawSizes {
			if s > 0 {
				bs = append(bs, fakeBucket{size: int(s), kind: wire.KindData})
			}
		}
		if len(bs) == 0 {
			return true
		}
		c, err := Build(bs)
		if err != nil {
			return false
		}
		tm := sim.Time(rawT)
		idx, start := c.NextBucketAt(tm)
		if start < tm || units.Elapsed(tm, start) > c.CycleLen() {
			return false
		}
		return units.CycleOffset(start, c.CycleLen()) == c.StartInCycle(idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: InFlightAt(t) contains t within [start, start+size).
func TestQuickInFlightAt(t *testing.T) {
	f := func(rawSizes []uint8, rawT uint32) bool {
		var bs []Bucket
		for _, s := range rawSizes {
			if s > 0 {
				bs = append(bs, fakeBucket{size: int(s), kind: wire.KindData})
			}
		}
		if len(bs) == 0 {
			return true
		}
		c, err := Build(bs)
		if err != nil {
			return false
		}
		tm := sim.Time(rawT)
		idx, start := c.InFlightAt(tm)
		return start <= tm && tm < start+c.SizeOf(idx).Span()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBoundaryArithmetic pins the geometry at the exact edges the
// multichannel walkers depend on: t==0, starts that coincide with cycle
// boundaries, and the final bucket's wraparound into the next cycle.
func TestBoundaryArithmetic(t *testing.T) {
	c := buildTest(t, 10, 20, 30)
	cycle := c.CycleLen().Span()

	// t == 0: every query resolves inside the first cycle with no wrap.
	if idx, start := c.NextBucketAt(0); idx != 0 || start != 0 {
		t.Errorf("NextBucketAt(0) = (%d, %d), want (0, 0)", idx, start)
	}
	if idx, start := c.InFlightAt(0); idx != 0 || start != 0 {
		t.Errorf("InFlightAt(0) = (%d, %d), want (0, 0)", idx, start)
	}
	for i, want := range []sim.Time{0, 10, 30} {
		if got := c.NextOccurrence(units.Index(i), 0); got != want {
			t.Errorf("NextOccurrence(%d, 0) = %d, want %d", i, got, want)
		}
	}

	// Exact cycle boundaries: at t = k*cycle the first bucket starts NOW,
	// in flight is the first bucket, and occurrences land in that cycle.
	for _, k := range []sim.Time{1, 2, 7} {
		at := k * cycle
		if idx, start := c.NextBucketAt(at); idx != 0 || start != at {
			t.Errorf("NextBucketAt(%d) = (%d, %d), want (0, %d)", at, idx, start, at)
		}
		if idx, start := c.InFlightAt(at); idx != 0 || start != at {
			t.Errorf("InFlightAt(%d) = (%d, %d), want (0, %d)", at, idx, start, at)
		}
		if got := c.NextOccurrence(2, at); got != at+30 {
			t.Errorf("NextOccurrence(2, %d) = %d, want %d", at, got, at+30)
		}
		// One byte earlier: still inside the previous cycle's final bucket.
		if idx, start := c.InFlightAt(at-1); idx != 2 || start != at-30 {
			t.Errorf("InFlightAt(%d) = (%d, %d), want (2, %d)", at-1, idx, start, at-30)
		}
	}

	// Final-bucket wraparound: one byte into the last bucket, its next
	// occurrence is a full cycle after the current one began.
	if got := c.NextOccurrence(2, 31); got != 30+cycle {
		t.Errorf("NextOccurrence(2, 31) = %d, want %d", got, 30+cycle)
	}
	// ... and at its exact start the occurrence is inclusive.
	if got := c.NextOccurrence(2, 30); got != 30 {
		t.Errorf("NextOccurrence(2, 30) = %d, want 30", got)
	}
	// Mid final bucket, the next boundary is the next cycle's first bucket.
	if idx, start := c.NextBucketAt(5*cycle + 31); idx != 0 || start != 6*cycle {
		t.Errorf("NextBucketAt(mid final) = (%d, %d), want (0, %d)", idx, start, 6*cycle)
	}

	// Single-bucket channel: cycle == bucket, every boundary coincides.
	one := buildTest(t, 7)
	if idx, start := one.NextBucketAt(7); idx != 0 || start != 7 {
		t.Errorf("one-bucket NextBucketAt(7) = (%d, %d), want (0, 7)", idx, start)
	}
	if idx, start := one.NextBucketAt(6); idx != 0 || start != 7 {
		t.Errorf("one-bucket NextBucketAt(6) = (%d, %d), want (0, 7)", idx, start)
	}
	if idx, start := one.InFlightAt(13); idx != 0 || start != 7 {
		t.Errorf("one-bucket InFlightAt(13) = (%d, %d), want (0, 7)", idx, start)
	}
	if got := one.NextOccurrence(0, 8); got != 14 {
		t.Errorf("one-bucket NextOccurrence(0, 8) = %d, want 14", got)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild on empty input did not panic")
		}
	}()
	MustBuild(nil)
}
