package channel_test

import (
	"fmt"

	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

type demoBucket struct {
	size int
}

func (b demoBucket) Size() units.ByteCount { return units.Bytes(b.size) }
func (b demoBucket) Kind() wire.Kind       { return wire.KindData }
func (b demoBucket) Encode() []byte        { return make([]byte, b.size) }

// A client tuning in mid-bucket waits for the next complete bucket — the
// paper's "initial wait" — and doze targets wrap around the cycle.
func Example() {
	ch := channel.MustBuild([]channel.Bucket{
		demoBucket{100}, demoBucket{50}, demoBucket{150},
	})
	fmt.Println("cycle:", ch.CycleLen(), "bytes in", ch.NumBuckets(), "buckets")

	idx, start := ch.NextBucketAt(120) // mid bucket 1
	fmt.Printf("tune in at t=120: first complete bucket is %d at t=%d\n", idx, start)

	// Bucket 0 already passed; its next occurrence is in the next cycle.
	fmt.Println("next occurrence of bucket 0:", ch.NextOccurrence(0, 120))
	// Output:
	// cycle: 300 bytes in 3 buckets
	// tune in at t=120: first complete bucket is 2 at t=150
	// next occurrence of bucket 0: 300
}
