// Package channel models the cyclic wireless broadcast channel.
//
// A channel is a fixed sequence of buckets broadcast over and over (the
// paper's "broadcast cycle"). Positions are byte offsets and the server
// transmits one byte per virtual time unit, so the channel provides the
// arithmetic every access protocol needs: which bucket is in flight at a
// given time, when the next complete bucket begins (the paper's "initial
// wait"), and when a specific bucket will next be broadcast (the target of
// a doze-mode offset pointer).
package channel

import (
	"fmt"
	"sort"

	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/wire"
)

// Bucket is one broadcast unit. Implementations live in the scheme
// packages; the channel only needs sizes and kinds. Encode must produce
// exactly Size bytes — scheme tests assert this so simulated timings match
// real on-air bytes.
type Bucket interface {
	// Size is the encoded byte length of the bucket.
	Size() int
	// Kind reports the bucket's role.
	Kind() wire.Kind
	// Encode serializes the bucket to its wire form.
	Encode() []byte
}

// Channel is an immutable broadcast cycle.
type Channel struct {
	buckets []Bucket
	starts  []int64 // starts[i] = byte offset of bucket i within the cycle
	cycle   int64
}

// Build assembles a channel from a bucket sequence.
func Build(buckets []Bucket) (*Channel, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("channel: empty bucket sequence")
	}
	starts := make([]int64, len(buckets))
	var off int64
	for i, b := range buckets {
		if b == nil {
			return nil, fmt.Errorf("channel: nil bucket at %d", i)
		}
		if b.Size() <= 0 {
			return nil, fmt.Errorf("channel: bucket %d has nonpositive size %d", i, b.Size())
		}
		starts[i] = off
		off += int64(b.Size())
	}
	return &Channel{buckets: buckets, starts: starts, cycle: off}, nil
}

// MustBuild is Build for statically correct sequences; it panics on error.
func MustBuild(buckets []Bucket) *Channel {
	c, err := Build(buckets)
	if err != nil {
		panic(err)
	}
	return c
}

// NumBuckets returns the number of buckets per cycle.
func (c *Channel) NumBuckets() int { return len(c.buckets) }

// Bucket returns the i-th bucket of the cycle.
func (c *Channel) Bucket(i int) Bucket { return c.buckets[i] }

// CycleLen returns the broadcast cycle length in bytes.
func (c *Channel) CycleLen() int64 { return c.cycle }

// StartInCycle returns bucket i's byte offset within the cycle.
func (c *Channel) StartInCycle(i int) int64 { return c.starts[i] }

// SizeOf returns bucket i's byte size.
func (c *Channel) SizeOf(i int) int64 { return int64(c.buckets[i].Size()) }

// NextBucketAt returns the index and absolute start time of the first
// bucket whose broadcast begins at or after time t. A client tuning in
// mid-bucket must wait for this boundary — the paper's initial wait.
func (c *Channel) NextBucketAt(t sim.Time) (int, sim.Time) {
	base := (int64(t) / c.cycle) * c.cycle
	off := int64(t) - base
	i := sort.Search(len(c.starts), func(i int) bool { return c.starts[i] >= off })
	if i == len(c.starts) {
		return 0, sim.Time(base + c.cycle)
	}
	return i, sim.Time(base + c.starts[i])
}

// InFlightAt returns the index of the bucket being transmitted at time t
// and its absolute start time.
func (c *Channel) InFlightAt(t sim.Time) (int, sim.Time) {
	base := (int64(t) / c.cycle) * c.cycle
	off := int64(t) - base
	// First start strictly greater than off, minus one, is the bucket
	// containing off.
	i := sort.Search(len(c.starts), func(i int) bool { return c.starts[i] > off })
	return i - 1, sim.Time(base + c.starts[i-1])
}

// NextOccurrence returns the absolute start time of the next broadcast of
// bucket i beginning at or after time t.
func (c *Channel) NextOccurrence(i int, t sim.Time) sim.Time {
	base := (int64(t) / c.cycle) * c.cycle
	cand := base + c.starts[i]
	if cand < int64(t) {
		cand += c.cycle
	}
	return sim.Time(cand)
}

// EndGiven returns the absolute finish time of bucket i when its broadcast
// starts at the given time.
func (c *Channel) EndGiven(i int, start sim.Time) sim.Time {
	return start + sim.Time(c.buckets[i].Size())
}

// NextCycleStart returns the absolute time at which the next cycle begins
// at or after t.
func (c *Channel) NextCycleStart(t sim.Time) sim.Time {
	base := (int64(t) / c.cycle) * c.cycle
	if base == int64(t) {
		return t
	}
	return sim.Time(base + c.cycle)
}

// CountKind returns how many buckets of the given kind the cycle carries.
func (c *Channel) CountKind(k wire.Kind) int {
	n := 0
	for _, b := range c.buckets {
		if b.Kind() == k {
			n++
		}
	}
	return n
}

// BytesOfKind returns the total bytes per cycle used by buckets of kind k.
func (c *Channel) BytesOfKind(k wire.Kind) int64 {
	var n int64
	for _, b := range c.buckets {
		if b.Kind() == k {
			n += int64(b.Size())
		}
	}
	return n
}
