// Package channel models the cyclic wireless broadcast channel.
//
// A channel is a fixed sequence of buckets broadcast over and over (the
// paper's "broadcast cycle"). Positions are byte offsets and the server
// transmits one byte per virtual time unit, so the channel provides the
// arithmetic every access protocol needs: which bucket is in flight at a
// given time, when the next complete bucket begins (the paper's "initial
// wait"), and when a specific bucket will next be broadcast (the target of
// a doze-mode offset pointer).
//
// All geometry is expressed in the defined types of internal/units:
// sizes are units.ByteCount, in-cycle positions are units.ByteOffset and
// bucket positions are units.BucketIndex — so confusing a byte offset
// with a byte amount, or an index with a count, is a compile error.
package channel

import (
	"fmt"
	"sort"

	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Bucket is one broadcast unit. Implementations live in the scheme
// packages; the channel only needs sizes and kinds. Encode must produce
// exactly Size bytes — scheme tests assert this so simulated timings match
// real on-air bytes.
type Bucket interface {
	// Size is the encoded byte length of the bucket.
	Size() units.ByteCount
	// Kind reports the bucket's role.
	Kind() wire.Kind
	// Encode serializes the bucket to its wire form.
	Encode() []byte
}

// Channel is an immutable broadcast cycle.
type Channel struct {
	buckets []Bucket
	starts  []units.ByteOffset // starts[i] = byte offset of bucket i within the cycle
	cycle   units.ByteCount
}

// Build assembles a channel from a bucket sequence.
func Build(buckets []Bucket) (*Channel, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("channel: empty bucket sequence")
	}
	starts := make([]units.ByteOffset, len(buckets))
	var off units.ByteOffset
	var total units.ByteCount
	for i, b := range buckets {
		if b == nil {
			return nil, fmt.Errorf("channel: nil bucket at %d", i)
		}
		if b.Size() <= 0 {
			return nil, fmt.Errorf("channel: bucket %d has nonpositive size %d", i, b.Size())
		}
		starts[i] = off
		off = off.Advance(b.Size())
		total += b.Size()
	}
	return &Channel{buckets: buckets, starts: starts, cycle: total}, nil
}

// MustBuild is Build for statically correct sequences; it panics on error.
func MustBuild(buckets []Bucket) *Channel {
	c, err := Build(buckets)
	if err != nil {
		panic(err)
	}
	return c
}

// NumBuckets returns the number of buckets per cycle.
func (c *Channel) NumBuckets() units.BucketCount { return units.Count(len(c.buckets)) }

// Bucket returns the i-th bucket of the cycle.
func (c *Channel) Bucket(i units.BucketIndex) Bucket { return c.buckets[i] }

// CycleLen returns the broadcast cycle length in bytes.
func (c *Channel) CycleLen() units.ByteCount { return c.cycle }

// StartInCycle returns bucket i's byte offset within the cycle.
func (c *Channel) StartInCycle(i units.BucketIndex) units.ByteOffset { return c.starts[i] }

// SizeOf returns bucket i's byte size.
func (c *Channel) SizeOf(i units.BucketIndex) units.ByteCount { return c.buckets[i].Size() }

// NextBucketAt returns the index and absolute start time of the first
// bucket whose broadcast begins at or after time t. A client tuning in
// mid-bucket must wait for this boundary — the paper's initial wait.
func (c *Channel) NextBucketAt(t sim.Time) (units.BucketIndex, sim.Time) {
	base := units.CycleBase(t, c.cycle)
	off := units.CycleOffset(t, c.cycle)
	i := sort.Search(len(c.starts), func(i int) bool { return c.starts[i] >= off })
	if i == len(c.starts) {
		return 0, base + c.cycle.Span()
	}
	return units.Index(i), c.starts[i].At(base)
}

// InFlightAt returns the index of the bucket being transmitted at time t
// and its absolute start time.
func (c *Channel) InFlightAt(t sim.Time) (units.BucketIndex, sim.Time) {
	base := units.CycleBase(t, c.cycle)
	off := units.CycleOffset(t, c.cycle)
	// First start strictly greater than off, minus one, is the bucket
	// containing off.
	i := sort.Search(len(c.starts), func(i int) bool { return c.starts[i] > off })
	return units.Index(i - 1), c.starts[i-1].At(base)
}

// NextOccurrence returns the absolute start time of the next broadcast of
// bucket i beginning at or after time t.
func (c *Channel) NextOccurrence(i units.BucketIndex, t sim.Time) sim.Time {
	cand := c.starts[i].At(units.CycleBase(t, c.cycle))
	if cand < t {
		cand += c.cycle.Span()
	}
	return cand
}

// EndGiven returns the absolute finish time of bucket i when its broadcast
// starts at the given time.
func (c *Channel) EndGiven(i units.BucketIndex, start sim.Time) sim.Time {
	return start + c.buckets[i].Size().Span()
}

// NextCycleStart returns the absolute time at which the next cycle begins
// at or after t.
func (c *Channel) NextCycleStart(t sim.Time) sim.Time {
	base := units.CycleBase(t, c.cycle)
	if base == t {
		return t
	}
	return base + c.cycle.Span()
}

// CountKind returns how many buckets of the given kind the cycle carries.
func (c *Channel) CountKind(k wire.Kind) units.BucketCount {
	n := 0
	for _, b := range c.buckets {
		if b.Kind() == k {
			n++
		}
	}
	return units.Count(n)
}

// BytesOfKind returns the total bytes per cycle used by buckets of kind k.
func (c *Channel) BytesOfKind(k wire.Kind) units.ByteCount {
	var n units.ByteCount
	for _, b := range c.buckets {
		if b.Kind() == k {
			n += b.Size()
		}
	}
	return n
}
