package wire

import (
	"testing"
	"testing/quick"

	"github.com/airindex/airindex/internal/units"
)

func TestHeaderRoundTrip(t *testing.T) {
	w := NewWriter(HeaderSize)
	w.Header(Header{Kind: KindIndex, Seq: 123456})
	if w.Len() != HeaderSize {
		t.Fatalf("header encoded to %d bytes, want %d", w.Len(), HeaderSize)
	}
	r := NewReader(w.Bytes())
	h := r.Header()
	if h.Kind != KindIndex || h.Seq != 123456 {
		t.Fatalf("decoded header %+v", h)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestFieldRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(7)
	w.U16(300)
	w.U32(70000)
	w.U64(1 << 40)
	w.Offset(-1)
	w.Offset(987654321)
	w.Raw([]byte("hello"))
	w.Pad(3)

	r := NewReader(w.Bytes())
	if r.U8() != 7 || r.U16() != 300 || r.U32() != 70000 || r.U64() != 1<<40 {
		t.Fatal("numeric round trip failed")
	}
	if r.Offset() != -1 || r.Offset() != 987654321 {
		t.Fatal("offset round trip failed")
	}
	if string(r.Raw(5)) != "hello" {
		t.Fatal("raw round trip failed")
	}
	r.Skip(3)
	if r.Remaining() != 0 {
		t.Fatalf("remaining %d, want 0", r.Remaining())
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestTruncatedReads(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32()
	if r.Err() == nil {
		t.Fatal("reading past the end should set an error")
	}
	// Subsequent reads stay in the error state and return zeros.
	if r.U8() != 0 || r.Err() == nil {
		t.Fatal("error state not sticky")
	}
}

func TestRawNegativeLength(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if r.Raw(-1) != nil || r.Err() == nil {
		t.Fatal("negative raw length should error")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindData:      "data",
		KindIndex:     "index",
		KindSignature: "signature",
		KindHash:      "hash",
		Kind(99):      "kind(99)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestQuickU64RoundTrip(t *testing.T) {
	f := func(vs []uint64) bool {
		w := NewWriter(units.Bytes(len(vs) * 8))
		for _, v := range vs {
			w.U64(v)
		}
		if w.Len() != units.Bytes(len(vs)*8) {
			return false
		}
		r := NewReader(w.Bytes())
		for _, v := range vs {
			if r.U64() != v {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOffsetRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		w := NewWriter(8)
		w.Offset(v)
		return NewReader(w.Bytes()).Offset() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
