package wire

import (
	"errors"

	"github.com/airindex/airindex/internal/units"
)

// This file is the transport-framing half of the live broadcast daemon
// (internal/aircast): one encoded bucket becomes one sequenced datagram
// that can survive reordering, loss and corruption on a real link. The
// frame layout is
//
//	magic (1) | epoch (4) | cycle offset (8) | bucket index (4) | payload | CRC32C (4)
//
// sealed with the same wire.Seal/Verify trailer the simulator's
// unreliable-channel layer uses, so the chaos proxy's bit flips are
// detected by exactly the mechanism the recovery walkers already trust.
// Epoch identifies the broadcast image (bumped on every reconfiguration,
// so mid-cycle clients restart cleanly); cycle offset is the bucket's
// byte position within its cycle (the receiver's byte-clock anchor);
// bucket index sequences the datagram within the cycle. Like the CRC
// sideband (DESIGN.md §7), the header and trailer are transport overhead
// outside the byte-clock: a client's tuning time counts only the payload
// bytes, which are exactly the bucket's simulator-visible encoding.

// DatagramMagic is the first byte of every sealed datagram frame; a frame
// opening with anything else was never produced by an aircast server.
const DatagramMagic = 0xA7

// datagramHeaderLen is the raw width of the datagram header: magic (1),
// epoch (4), cycle offset (8), bucket index (4).
const datagramHeaderLen = 1 + 4 + 8 + 4

// DatagramOverhead is the per-datagram transport overhead in bytes: the
// header plus the CRC32C trailer. A received frame of length n carries a
// bucket payload of n - DatagramOverhead bytes — the quantity charged to
// tuning time even when the frame fails verification (the receiver
// listened to the whole frame either way).
const DatagramOverhead units.ByteCount = datagramHeaderLen + ChecksumSize

// ErrMagic is the sentinel wrapped when a frame does not open with
// DatagramMagic: the bytes are intact (the CRC matched) but they are not
// an aircast datagram.
var ErrMagic = errors.New("wire: not a datagram frame")

// Datagram is one decoded transport frame: the framing fields plus the
// bucket's simulator-visible encoding.
type Datagram struct {
	// Epoch identifies the broadcast image the datagram belongs to; it is
	// bumped on every graceful reconfiguration.
	Epoch uint32
	// Offset is the bucket's byte position within its broadcast cycle —
	// the receiver's anchor for reconstructing the byte-clock.
	Offset units.ByteOffset
	// Bucket is the bucket's index within the cycle.
	Bucket units.BucketIndex
	// Payload is the bucket's encoded bytes, exactly as the simulator's
	// channel would charge them.
	Payload []byte
}

// EncodeDatagram seals one bucket payload into a transport frame. The
// payload is copied; the input slice is not retained.
func EncodeDatagram(d Datagram) []byte {
	w := NewWriter(units.Bytes(datagramHeaderLen + len(d.Payload)))
	w.U8(DatagramMagic)
	w.U32(d.Epoch)
	w.U64(uint64(d.Offset))
	w.U32(uint32(d.Bucket))
	w.Raw(d.Payload)
	return Seal(w.Bytes())
}

// DecodeDatagram verifies and parses a received frame. Every failure is a
// *DecodeError: wrapping ErrTruncated when the frame is too short for its
// trailer or header, ErrChecksum when the trailer does not match (the
// frame was corrupted in flight — nothing in it may be trusted), and
// ErrMagic when an intact frame is not an aircast datagram. The returned
// payload aliases the frame; callers that retain it across reads of the
// same buffer must copy.
func DecodeDatagram(frame []byte) (Datagram, error) {
	payload, err := Verify(frame)
	if err != nil {
		return Datagram{}, err
	}
	r := NewReader(payload)
	magic := r.U8()
	d := Datagram{
		Epoch:  r.U32(),
		Offset: units.Offset64(int64(r.U64())),
		Bucket: units.Index(int(int32(r.U32()))),
	}
	if err := r.Err(); err != nil {
		return Datagram{}, err
	}
	if magic != DatagramMagic {
		return Datagram{}, &DecodeError{Op: "magic", Need: 1, Pos: 0, Len: len(frame), Err: ErrMagic}
	}
	d.Payload = r.Raw(r.Remaining())
	if d.Payload == nil {
		// Remaining() is never negative, so a zero-length tail decodes to
		// an empty (non-nil) payload for round-trip equality.
		d.Payload = payload[len(payload):]
	}
	return d, nil
}
