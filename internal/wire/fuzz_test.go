package wire

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"github.com/airindex/airindex/internal/units"
)

// exercise drives every Reader operation over the buffer in a fixed
// script; it must never panic, whatever the input.
func exercise(p []byte) error {
	r := NewReader(p)
	_ = r.Header()
	_ = r.U8()
	_ = r.U16()
	_ = r.U32()
	_ = r.U64()
	_ = r.Offset()
	_ = r.Raw(3)
	r.Skip(2)
	_ = r.Raw(units.Bytes(len(p))) // always past the end by now
	_ = r.Remaining()
	return r.Err()
}

// FuzzReader holds the decoder to its no-panic, typed-error contract over
// arbitrary byte strings. The seed corpus covers the empty buffer, every
// short-header length, a well-formed bucket, and adversarial sizes.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x02, 0x00, 0x00, 0x00})
	w := NewWriter(64)
	w.Header(Header{Kind: KindIndex, Seq: 7})
	w.U16(42)
	w.U64(1 << 40)
	w.Offset(-1)
	w.Raw([]byte("payload"))
	f.Add(w.Bytes())
	f.Add(Seal(w.Bytes()))
	f.Add(make([]byte, 255))
	f.Fuzz(func(t *testing.T, p []byte) {
		err := exercise(p)
		// The script over-reads every input of reasonable size, so an
		// error must be present and typed.
		if len(p) < 64 {
			if err == nil {
				t.Fatalf("over-read of %d bytes reported no error", len(p))
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("error %v does not wrap ErrTruncated", err)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %v is not a *DecodeError", err)
			}
		}
		// Verify must never panic either; a random frame's trailer only
		// matches by a 2^-32 fluke, which the fuzzer will not hit.
		if _, err := Verify(p); err == nil && len(p) < checksumLen {
			t.Fatalf("Verify accepted a %d-byte frame shorter than its trailer", len(p))
		}
	})
}

// TestReaderQuick drives randomized buffers and read lengths through the
// decoder with testing/quick: no panic, and truncation errors are typed.
func TestReaderQuick(t *testing.T) {
	robust := func(p []byte, n int64) bool {
		r := NewReader(p)
		_ = r.Raw(units.Bytes64(n)) // any n, including negative and huge
		_ = r.Header()
		_ = r.U64()
		err := r.Err()
		if err == nil {
			return true
		}
		return errors.Is(err, ErrTruncated)
	}
	if err := quick.Check(robust, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSealVerifyRoundTrip(t *testing.T) {
	w := NewWriter(32)
	w.Header(Header{Kind: KindData, Seq: 3})
	w.Raw([]byte("hello, air"))
	payload := w.Bytes()
	frame := Seal(payload)
	if got, want := units.Bytes(len(frame)-len(payload)), ChecksumSize; got != want {
		t.Fatalf("trailer is %d bytes, want %d", got, want)
	}
	back, err := Verify(frame)
	if err != nil {
		t.Fatalf("Verify(Seal(p)) failed: %v", err)
	}
	if string(back) != string(payload) {
		t.Fatalf("payload mangled: %q != %q", back, payload)
	}
	r, err := NewVerified(frame)
	if err != nil {
		t.Fatalf("NewVerified: %v", err)
	}
	if h := r.Header(); h.Kind != KindData || h.Seq != 3 {
		t.Fatalf("decoded header %+v", h)
	}
}

// TestVerifyDetectsEveryBitFlip: CRC32C guarantees detection of any
// single-bit error, so every possible flip of a sealed frame must fail
// verification.
func TestVerifyDetectsEveryBitFlip(t *testing.T) {
	w := NewWriter(16)
	w.Header(Header{Kind: KindIndex, Seq: 9})
	w.U32(0xDEADBEEF)
	frame := Seal(w.Bytes())
	for bit := 0; bit < 8*len(frame); bit++ {
		bad := make([]byte, len(frame))
		copy(bad, frame)
		bad[bit/8] ^= 1 << (bit % 8)
		if _, err := Verify(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip of bit %d not detected (err=%v)", bit, err)
		}
	}
}

func TestVerifyShortFrame(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		if _, err := Verify(make([]byte, n)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("Verify(%d bytes) err = %v, want ErrTruncated", n, err)
		}
	}
	// Exactly a trailer over an empty payload is a valid frame.
	empty := Seal(nil)
	if p, err := Verify(empty); err != nil || len(p) != 0 {
		t.Fatalf("Verify(Seal(nil)) = %v, %v", p, err)
	}
}

func TestChecksumIsCastagnoli(t *testing.T) {
	// "123456789" is the standard CRC check string; CRC32C yields 0xE3069283.
	if got := Checksum([]byte("123456789")); got != 0xE3069283 {
		t.Fatalf("Checksum = %#x, want 0xE3069283 (CRC32C)", got)
	}
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], Checksum(nil))
	if string(Seal(nil)) != string(buf[:]) {
		t.Fatal("Seal(nil) is not the bare trailer")
	}
}
