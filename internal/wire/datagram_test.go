package wire

import (
	"errors"
	"testing"

	"github.com/airindex/airindex/internal/units"
)

func TestDatagramRoundTrip(t *testing.T) {
	for _, d := range []Datagram{
		{Epoch: 0, Offset: 0, Bucket: 0, Payload: []byte{}},
		{Epoch: 7, Offset: 123456, Bucket: 42, Payload: []byte("bucket bytes")},
		{Epoch: 1<<32 - 1, Offset: units.Offset64(1 << 40), Bucket: 99999, Payload: make([]byte, 512)},
	} {
		frame := EncodeDatagram(d)
		if got := units.Bytes(len(frame) - len(d.Payload)); got != DatagramOverhead {
			t.Fatalf("frame overhead %d bytes, want %d", got, DatagramOverhead)
		}
		back, err := DecodeDatagram(frame)
		if err != nil {
			t.Fatalf("decode(%+v): %v", d, err)
		}
		if back.Epoch != d.Epoch || back.Offset != d.Offset || back.Bucket != d.Bucket {
			t.Fatalf("header mangled: sent %+v got %+v", d, back)
		}
		if string(back.Payload) != string(d.Payload) {
			t.Fatalf("payload mangled: %q != %q", back.Payload, d.Payload)
		}
	}
}

// TestDatagramErrorVariants pins the typed error per failure mode:
// truncation, corruption, and a frame that was never a datagram.
func TestDatagramErrorVariants(t *testing.T) {
	frame := EncodeDatagram(Datagram{Epoch: 3, Offset: 10, Bucket: 1, Payload: []byte("p")})

	// Too short for even the CRC trailer.
	if _, err := DecodeDatagram(frame[:2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short frame err = %v, want ErrTruncated", err)
	}
	// Intact trailer over a payload too short for the header.
	if _, err := DecodeDatagram(Seal([]byte{DatagramMagic, 0})); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header err = %v, want ErrTruncated", err)
	}
	// A flipped bit anywhere fails the checksum.
	bad := make([]byte, len(frame))
	copy(bad, frame)
	bad[5] ^= 0x10
	if _, err := DecodeDatagram(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt frame err = %v, want ErrChecksum", err)
	}
	// An intact sealed frame that is not a datagram.
	w := NewWriter(datagramHeaderLen)
	w.U8(0x00) // wrong magic
	w.U32(3)
	w.U64(10)
	w.U32(1)
	if _, err := DecodeDatagram(Seal(w.Bytes())); !errors.Is(err, ErrMagic) {
		t.Fatalf("wrong magic err = %v, want ErrMagic", err)
	}
	// Every variant is a *DecodeError.
	for _, f := range [][]byte{frame[:2], bad, Seal(w.Bytes())} {
		_, err := DecodeDatagram(f)
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("error %v is not a *DecodeError", err)
		}
	}
}

// FuzzDatagram holds the transport decoder to the same no-panic,
// typed-error contract as the bucket Reader: arbitrary bytes either
// decode or fail with a *DecodeError, and every well-formed frame
// round-trips unchanged.
func FuzzDatagram(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{DatagramMagic})
	f.Add(EncodeDatagram(Datagram{Epoch: 1, Offset: 77, Bucket: 3, Payload: []byte("seed")}))
	f.Add(EncodeDatagram(Datagram{Payload: nil}))
	f.Add(Seal([]byte{DatagramMagic, 1, 2, 3}))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, p []byte) {
		d, err := DecodeDatagram(p)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode error %v is not a *DecodeError", err)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrMagic) {
				t.Fatalf("decode error %v wraps none of the datagram sentinels", err)
			}
			return
		}
		// A frame that decodes must re-encode byte-identically.
		if got := EncodeDatagram(d); string(got) != string(p) {
			t.Fatalf("re-encode differs: %x != %x", got, p)
		}
	})
}
