// Package wire defines the byte-level bucket encoding shared by every
// access method in the testbed.
//
// Buckets are the unit of broadcast (paper §3: "Broadcast data items are
// reorganized as buckets to put in broadcast channel"). Each scheme defines
// its own bucket layouts on top of the common header here; timing in the
// simulator is driven by encoded byte sizes, and every scheme's tests
// assert that its declared bucket Size() equals the length its encoder
// actually produces, so the measured access/tuning times correspond to real
// bytes on the air.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/airindex/airindex/internal/units"
)

// Kind tags a bucket with its role on the channel.
type Kind uint8

// Bucket kinds across all schemes.
const (
	KindData Kind = iota + 1
	KindIndex
	KindSignature
	KindHash
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindIndex:
		return "index"
	case KindSignature:
		return "signature"
	case KindHash:
		return "hash"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// headerLen and offsetLen are the raw widths used by the codec internals,
// which index into byte slices with plain ints.
const (
	headerLen = 1 + 4
	offsetLen = 8
)

// HeaderSize is the byte size of the common bucket header: kind (1 byte)
// plus the bucket's sequence number within the broadcast cycle (4 bytes).
const HeaderSize units.ByteCount = headerLen

// OffsetSize is the byte width of a time-offset field. Offsets in wireless
// broadcast are arrival-time deltas in bytes (paper §2.1); 8 bytes covers
// any cycle length the testbed can represent.
const OffsetSize units.ByteCount = offsetLen

// Header is the common prefix of every bucket.
type Header struct {
	Kind Kind
	Seq  uint32 // position of this bucket within the cycle
}

// Writer serializes bucket fields into a byte slice, tracking position.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer pre-allocating n bytes.
func NewWriter(n units.ByteCount) *Writer { return &Writer{buf: make([]byte, 0, int(n))} }

// Bytes returns the encoded bytes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() units.ByteCount { return units.Bytes(len(w.buf)) }

// Header writes the common bucket header.
func (w *Writer) Header(h Header) {
	w.buf = append(w.buf, byte(h.Kind))
	w.buf = binary.BigEndian.AppendUint32(w.buf, h.Seq)
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 writes a big-endian 16-bit value.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 writes a big-endian 32-bit value.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 writes a big-endian 64-bit value.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Offset writes a time offset (OffsetSize bytes). Negative values encode
// "no target" as the all-ones pattern.
func (w *Writer) Offset(v int64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v))
}

// Raw writes bytes verbatim.
func (w *Writer) Raw(p []byte) { w.buf = append(w.buf, p...) }

// Pad writes n zero bytes (bucket slack so fixed-size layouts stay fixed).
func (w *Writer) Pad(n units.ByteCount) {
	for i := 0; i < int(n); i++ {
		w.buf = append(w.buf, 0)
	}
}

// ErrTruncated is the sentinel wrapped by every short-bucket decode error:
// a Reader asked for bytes past the end of the buffer. Callers branch with
// errors.Is(err, wire.ErrTruncated).
var ErrTruncated = errors.New("wire: truncated bucket")

// ErrChecksum is the sentinel wrapped when a sealed frame's CRC32C trailer
// does not match its payload — the bucket was corrupted in flight.
var ErrChecksum = errors.New("wire: checksum mismatch")

// DecodeError is the typed error a Reader accumulates: which read failed,
// where, and why. It wraps ErrTruncated (or ErrChecksum for sealed-frame
// verification) so sentinel checks keep working.
type DecodeError struct {
	Op   string // the field read that failed ("header", "u32", "raw", ...)
	Need int    // bytes the read required
	Pos  int    // read position when it failed
	Len  int    // total buffer length
	Err  error  // sentinel cause (ErrTruncated, ErrChecksum)
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("%v: %s needs %d bytes at %d of %d", e.Err, e.Op, e.Need, e.Pos, e.Len)
}

// Unwrap exposes the sentinel cause to errors.Is.
func (e *DecodeError) Unwrap() error { return e.Err }

// Reader parses bucket fields from a byte slice. A read past the end of
// the buffer records a *DecodeError wrapping ErrTruncated and returns the
// zero value; no input can make a Reader panic (the decoder fuzz tests
// hold it to that).
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader wraps an encoded bucket.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Err returns the first decode error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte count.
func (r *Reader) Remaining() units.ByteCount { return units.Bytes(len(r.buf) - r.pos) }

func (r *Reader) need(op string, n int) bool {
	if r.err != nil {
		return false
	}
	// Compare against the remaining length (not r.pos+n) so a huge n
	// cannot overflow past the bound and panic the slice below.
	if n < 0 || n > len(r.buf)-r.pos {
		r.err = &DecodeError{Op: op, Need: n, Pos: r.pos, Len: len(r.buf), Err: ErrTruncated}
		return false
	}
	return true
}

// Header reads the common bucket header.
func (r *Reader) Header() Header {
	if !r.need("header", headerLen) {
		return Header{}
	}
	h := Header{Kind: Kind(r.buf[r.pos]), Seq: binary.BigEndian.Uint32(r.buf[r.pos+1:])}
	r.pos += headerLen
	return h
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need("u8", 1) {
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

// U16 reads a big-endian 16-bit value.
func (r *Reader) U16() uint16 {
	if !r.need("u16", 2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v
}

// U32 reads a big-endian 32-bit value.
func (r *Reader) U32() uint32 {
	if !r.need("u32", 4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

// U64 reads a big-endian 64-bit value.
func (r *Reader) U64() uint64 {
	if !r.need("u64", 8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// Offset reads a time offset written by Writer.Offset.
func (r *Reader) Offset() int64 { return int64(r.U64()) }

// Raw reads n bytes verbatim.
func (r *Reader) Raw(n units.ByteCount) []byte {
	if !r.need("raw", int(n)) {
		return nil
	}
	v := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return v
}

// Skip advances past n padding bytes.
func (r *Reader) Skip(n units.ByteCount) {
	if r.need("skip", int(n)) {
		r.pos += int(n)
	}
}
