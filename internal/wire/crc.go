package wire

import (
	"encoding/binary"
	"hash/crc32"

	"github.com/airindex/airindex/internal/units"
)

// This file is the corruption-detection half of the unreliable-channel
// extension (internal/faults supplies the loss process, access.WalkRecover
// the recovery policy). A bucket's encoded bytes can be sealed into an
// integrity frame: payload followed by a CRC32C (Castagnoli) trailer over
// the payload. Receivers verify the trailer before trusting any field;
// a mismatch is the signal that triggers the client's retry policy.
//
// The trailer is a sideband of the simulation's byte-clock: bucket Size()
// and the broadcast geometry stay exactly the paper's (so fault-free runs
// reproduce every table byte for byte), and detection is modeled as
// perfect — justified by CRC32C's 2^-32 false-accept probability and its
// guaranteed detection of all single-bit and burst-≤32 errors. DESIGN.md
// §7 records this accounting decision.

// checksumLen is the raw trailer width used by the codec internals.
const checksumLen = 4

// ChecksumSize is the byte size of the CRC32C trailer appended by Seal.
const ChecksumSize units.ByteCount = checksumLen

// castagnoli is the CRC32C polynomial table (iSCSI/ext4 polynomial,
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of the payload.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// Seal returns payload ++ CRC32C(payload): the integrity frame broadcast
// on an unreliable channel. The input is not modified.
func Seal(p []byte) []byte {
	out := make([]byte, 0, len(p)+checksumLen)
	out = append(out, p...)
	return binary.BigEndian.AppendUint32(out, Checksum(p))
}

// Verify splits a sealed frame into its payload after checking the
// trailer. It returns a *DecodeError wrapping ErrTruncated when the frame
// is too short to carry a trailer, and one wrapping ErrChecksum when the
// trailer does not match — the bucket was corrupted in flight and nothing
// in it may be trusted.
func Verify(frame []byte) ([]byte, error) {
	if len(frame) < checksumLen {
		return nil, &DecodeError{Op: "verify", Need: checksumLen, Pos: 0, Len: len(frame), Err: ErrTruncated}
	}
	payload := frame[:len(frame)-checksumLen]
	want := binary.BigEndian.Uint32(frame[len(frame)-checksumLen:])
	if Checksum(payload) != want {
		return nil, &DecodeError{Op: "verify", Need: checksumLen, Pos: len(payload), Len: len(frame), Err: ErrChecksum}
	}
	return payload, nil
}

// NewVerified returns a Reader over the payload of a sealed frame, or the
// verification error. It is the entry point for byte-driven clients on an
// unreliable channel: fields become readable only after the frame proves
// intact.
func NewVerified(frame []byte) (*Reader, error) {
	payload, err := Verify(frame)
	if err != nil {
		return nil, err
	}
	return NewReader(payload), nil
}
