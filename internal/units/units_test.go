package units

import (
	"testing"

	"github.com/airindex/airindex/internal/sim"
)

func TestByteCountArithmetic(t *testing.T) {
	n := Bytes(512)
	if n.Times(3) != Bytes(1536) {
		t.Errorf("Times(3) = %d, want 1536", n.Times(3))
	}
	if n.Div(Bytes(100)) != 5 {
		t.Errorf("Div(100) = %d, want 5", n.Div(Bytes(100)))
	}
	if n.Mod(Bytes(100)) != Bytes(12) {
		t.Errorf("Mod(100) = %d, want 12", n.Mod(Bytes(100)))
	}
	if Bytes64(1<<40).Span() != sim.Time(1<<40) {
		t.Errorf("Span does not preserve the byte clock identity")
	}
}

func TestElapsed(t *testing.T) {
	if got := Elapsed(sim.Time(100), sim.Time(350)); got != Bytes(250) {
		t.Errorf("Elapsed = %d, want 250", got)
	}
}

func TestCycleGeometry(t *testing.T) {
	cycle := Bytes(1000)
	cases := []struct {
		t    sim.Time
		base sim.Time
		off  ByteOffset
	}{
		{0, 0, 0},
		{999, 0, 999},
		{1000, 1000, 0},
		{2345, 2000, 345},
	}
	for _, tc := range cases {
		if got := CycleBase(tc.t, cycle); got != tc.base {
			t.Errorf("CycleBase(%d) = %d, want %d", tc.t, got, tc.base)
		}
		if got := CycleOffset(tc.t, cycle); got != tc.off {
			t.Errorf("CycleOffset(%d) = %d, want %d", tc.t, got, tc.off)
		}
		// Base plus in-cycle offset reconstructs the instant.
		if got := CycleOffset(tc.t, cycle).At(CycleBase(tc.t, cycle)); got != tc.t {
			t.Errorf("At(CycleBase) = %d, want %d", got, tc.t)
		}
	}
}

func TestOffsetAdvance(t *testing.T) {
	o := Offset64(40)
	if got := o.Advance(Bytes(60)); got != Offset64(100) {
		t.Errorf("Advance = %d, want 100", got)
	}
	if Offset64(77).Extent() != Bytes(77) {
		t.Errorf("Extent does not preserve the byte amount")
	}
}

func TestBucketIndexWrap(t *testing.T) {
	n := Count(5)
	if got := Index(4).Next(n); got != Index(0) {
		t.Errorf("Next wraps to %d, want 0", got)
	}
	if got := Index(3).Step(4, n); got != Index(2) {
		t.Errorf("Step(4) = %d, want 2", got)
	}
	if !Index(0).InCycle(n) || !Index(4).InCycle(n) {
		t.Error("valid indices reported out of cycle")
	}
	if Index(-1).InCycle(n) || Index(5).InCycle(n) {
		t.Error("invalid indices reported in cycle")
	}
	if !Index(4).IsLast(n) || Index(3).IsLast(n) {
		t.Error("IsLast misidentifies the final bucket")
	}
}
