// Package units defines distinct static types for the quantities the
// broadcast testbed measures: byte amounts, byte positions within a
// broadcast cycle, bucket indices and bucket counts.
//
// The paper's entire measurement model is "time measured in bytes"
// (EDBT 2002 §4.1): access time and tuning time are byte counts, bucket
// offsets are byte positions, and the simulator clock advances one unit
// per broadcast byte. Passing all of these around as bare int/int64
// makes unit-confusion bugs — adding an offset to a count, indexing with
// a byte position — invisible to the compiler, and any such slip silently
// corrupts every reproduced figure. Defined types make the arithmetic
// contracts checkable: Go rejects mixed-type arithmetic outright, and
// the unitsafety analyzer (internal/lint) rejects the conversions that
// would launder one unit into another.
//
// Conversion rules (enforced by unitsafety, see DESIGN.md §7):
//
//   - Raw numbers enter the unit system only through the constructors
//     Bytes, Bytes64, Offset64, Index and Count.
//   - Cross-unit conversions happen only through the methods below
//     (Span, Elapsed, At, Advance, Extent, CycleBase, CycleOffset, ...);
//     a direct conversion such as ByteCount(off) is a lint error
//     everywhere outside this package.
//   - Converting out of the unit system (int64(n), float64(n)) is always
//     allowed: sinks like stats accumulators and fmt are unit-blind.
//   - Multiplying or dividing two values of the same unit does not yield
//     that unit; use Times, Div and Mod instead.
package units

import "github.com/airindex/airindex/internal/sim"

// ByteCount is an amount of bytes: a bucket size, a cycle length, a
// tuning-time or access-time total.
type ByteCount int64

// ByteOffset is a byte position within a broadcast cycle, in [0, cycle).
type ByteOffset int64

// BucketIndex is a bucket's position within the broadcast cycle,
// in [0, NumBuckets). A negative index means "no bucket".
type BucketIndex int

// BucketCount is a number of buckets.
type BucketCount int

// Bytes converts a raw int into a byte amount.
func Bytes(n int) ByteCount { return ByteCount(n) }

// Bytes64 converts a raw int64 into a byte amount.
func Bytes64(n int64) ByteCount { return ByteCount(n) }

// Offset64 converts a raw int64 into a byte position.
func Offset64(n int64) ByteOffset { return ByteOffset(n) }

// Index converts a raw int into a bucket index.
func Index(i int) BucketIndex { return BucketIndex(i) }

// Count converts a raw int into a bucket count.
func Count(n int) BucketCount { return BucketCount(n) }

// Span returns the on-air duration of n bytes. The channel transmits one
// byte per virtual time unit, so the conversion is the identity — but it
// is the only sanctioned bridge from byte amounts to sim.Time.
func (n ByteCount) Span() sim.Time { return sim.Time(n) }

// Times returns n scaled by a dimensionless factor k.
func (n ByteCount) Times(k int) ByteCount { return n * ByteCount(k) }

// Div returns how many whole m-byte units fit in n. Dividing bytes by
// bytes yields a dimensionless ratio, hence the int return.
func (n ByteCount) Div(m ByteCount) int { return int(n / m) }

// Mod returns the remainder of n modulo m; the remainder of a byte
// amount by a byte amount is still bytes.
func (n ByteCount) Mod(m ByteCount) ByteCount { return n % m }

// Elapsed returns the bytes broadcast between two instants. This is the
// paper's measurement primitive: access time is Elapsed(arrival, end).
func Elapsed(from, to sim.Time) ByteCount { return ByteCount(to - from) }

// CycleBase returns the absolute start time of the broadcast cycle
// containing t, for a cycle of the given length.
func CycleBase(t sim.Time, cycle ByteCount) sim.Time {
	c := sim.Time(cycle)
	return (t / c) * c
}

// CycleOffset returns t's byte position within its broadcast cycle.
func CycleOffset(t sim.Time, cycle ByteCount) ByteOffset {
	return ByteOffset(t % sim.Time(cycle))
}

// At anchors an in-cycle offset to an absolute cycle start time.
func (o ByteOffset) At(base sim.Time) sim.Time { return base + sim.Time(o) }

// Advance moves a byte position forward by a byte amount.
func (o ByteOffset) Advance(n ByteCount) ByteOffset { return o + ByteOffset(n) }

// Extent returns the byte amount from the cycle start to this position —
// the one meaningful offset→count reading (offset 0 spans zero bytes).
func (o ByteOffset) Extent() ByteCount { return ByteCount(o) }

// Next returns the index after i, wrapping at the end of the cycle.
func (i BucketIndex) Next(n BucketCount) BucketIndex {
	return i.Step(1, n)
}

// Step returns the index k buckets after i, wrapping at the end of the
// cycle. k must be non-negative and n positive.
func (i BucketIndex) Step(k int, n BucketCount) BucketIndex {
	return (i + BucketIndex(k)) % BucketIndex(n)
}

// InCycle reports whether i is a valid index for a cycle of n buckets.
func (i BucketIndex) InCycle(n BucketCount) bool {
	return i >= 0 && int(i) < int(n)
}

// IsLast reports whether i is the final bucket of a cycle of n buckets.
func (i BucketIndex) IsLast(n BucketCount) bool {
	return int(i) == int(n)-1
}
