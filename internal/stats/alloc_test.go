package stats

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
	"testing"
)

// hotpathMethods parses the package's non-test sources and returns every
// exported function or method whose doc comment carries
// //airlint:hotpath, as "Recv.Name" (or a bare name for functions).
func hotpathMethods(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || !fd.Name.IsExported() {
					continue
				}
				marked := false
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == "//airlint:hotpath" {
						marked = true
					}
				}
				if !marked {
					continue
				}
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) == 1 {
					typ := fd.Recv.List[0].Type
					if star, ok := typ.(*ast.StarExpr); ok {
						typ = star.X
					}
					if id, ok := typ.(*ast.Ident); ok {
						name = id.Name + "." + name
					}
				}
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// TestAccumulatorsAllocFree is the runtime backstop behind escapecheck
// for the per-observation accumulators: every exported hotpath method
// must hold 0 allocs/op in steady state. The Quantile estimator is
// warmed past its five-observation initialization first — that phase
// buffers into a slice by design and carries its own hotalloc allow.
func TestAccumulatorsAllocFree(t *testing.T) {
	s := &Sample{}
	q := MustQuantile(0.95)
	for i := 0; i < 32; i++ {
		q.Add(float64(i % 7))
	}
	i := 0

	bulk := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	table := map[string]func(){
		"Sample.Add": func() {
			i++
			s.Add(float64(i % 11))
		},
		"Quantile.Add": func() {
			i++
			q.Add(float64(i % 11))
		},
		"Sample.AddAll": func() {
			i++
			bulk[i%len(bulk)] = float64(i % 13)
			s.AddAll(bulk)
		},
		"Quantile.AddAll": func() {
			i++
			bulk[i%len(bulk)] = float64(i % 13)
			q.AddAll(bulk)
		},
	}

	want := hotpathMethods(t)
	if len(want) == 0 {
		t.Fatal("no exported //airlint:hotpath functions found; parser or markers broken")
	}
	for _, name := range want {
		fn, ok := table[name]
		if !ok {
			t.Errorf("exported hotpath function %s has no allocation-test row", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(200, fn); avg != 0 {
				t.Errorf("%s allocates %v times per run, want 0", name, avg)
			}
		})
	}
	for name := range table {
		found := false
		for _, w := range want {
			if w == name {
				found = true
			}
		}
		if !found {
			t.Errorf("allocation-test row %s does not match any exported hotpath function", name)
		}
	}
}
