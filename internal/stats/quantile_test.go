package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func exactQuantile(xs []float64, p float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	idx := int(p * float64(len(tmp)))
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

func TestQuantileRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewQuantile(p); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustQuantile(0) did not panic")
		}
	}()
	MustQuantile(0)
}

func TestQuantileSmallSamples(t *testing.T) {
	q := MustQuantile(0.5)
	if q.Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	q.Add(10)
	if q.Value() != 10 {
		t.Fatalf("one observation: %v", q.Value())
	}
	q.Add(20)
	q.Add(30)
	v := q.Value()
	if v < 10 || v > 30 {
		t.Fatalf("three observations: median estimate %v", v)
	}
	if q.N() != 3 {
		t.Fatalf("N = %d", q.N())
	}
}

func TestQuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		q := MustQuantile(p)
		var xs []float64
		for i := 0; i < 50000; i++ {
			x := rng.Float64() * 1000
			xs = append(xs, x)
			q.Add(x)
		}
		want := exactQuantile(xs, p)
		got := q.Value()
		if math.Abs(got-want) > 12 { // 1.2% of the range
			t.Errorf("p=%v: estimate %v vs exact %v", p, got, want)
		}
	}
}

func TestQuantileNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := MustQuantile(0.95)
	var xs []float64
	for i := 0; i < 80000; i++ {
		x := rng.NormFloat64()*50 + 500
		xs = append(xs, x)
		q.Add(x)
	}
	want := exactQuantile(xs, 0.95)
	if got := q.Value(); math.Abs(got-want)/want > 0.02 {
		t.Errorf("normal p95: %v vs %v", got, want)
	}
}

func TestQuantileBimodalAndConstants(t *testing.T) {
	// Constants: the estimate is the constant.
	q := MustQuantile(0.9)
	for i := 0; i < 1000; i++ {
		q.Add(42)
	}
	if q.Value() != 42 {
		t.Fatalf("constant stream: %v", q.Value())
	}
	// Bimodal: p50 lands in or between the modes.
	rng := rand.New(rand.NewSource(3))
	q2 := MustQuantile(0.5)
	for i := 0; i < 40000; i++ {
		if rng.Intn(2) == 0 {
			q2.Add(10 + rng.Float64())
		} else {
			q2.Add(1000 + rng.Float64())
		}
	}
	v := q2.Value()
	if v < 10 || v > 1001 {
		t.Fatalf("bimodal median %v outside data range", v)
	}
}

// sameQuantileState compares two estimators field by field (the struct
// holds a slice, so == is unavailable).
func sameQuantileState(a, b *Quantile) bool {
	if a.p != b.p || a.n != b.n || a.heights != b.heights ||
		a.pos != b.pos || a.want != b.want || a.grow != b.grow ||
		len(a.initial) != len(b.initial) {
		return false
	}
	for i := range a.initial {
		if a.initial[i] != b.initial[i] {
			return false
		}
	}
	return true
}

// TestQuantileMergeEmptyIdentity pins the exactness guarantees Merge makes
// for degenerate shard counts: merging into an empty estimator is a
// bit-identical copy (the one-shard engine path relies on this), and
// merging an empty or nil estimator is a no-op.
func TestQuantileMergeEmptyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	full := MustQuantile(0.95)
	for i := 0; i < 10000; i++ {
		full.Add(rng.Float64() * 1000)
	}
	empty := MustQuantile(0.95)
	empty.Merge(full)
	if empty.n != full.n || empty.heights != full.heights ||
		empty.pos != full.pos || empty.want != full.want {
		t.Fatal("merge into empty estimator is not a verbatim copy")
	}
	before := *full
	full.Merge(MustQuantile(0.95))
	full.Merge(nil)
	if !sameQuantileState(full, &before) {
		t.Fatal("merging an empty or nil estimator changed the receiver")
	}

	// The copy must be deep: pre-init donors keep their buffered
	// observations, and the copy's buffer must be independent.
	small := MustQuantile(0.5)
	small.Add(3)
	small.Add(1)
	dst := MustQuantile(0.5)
	dst.Merge(small)
	dst.Add(2)
	if small.N() != 2 || small.Value() != 3 {
		t.Fatal("merge mutated the pre-init donor")
	}
	if dst.N() != 3 || dst.Value() != 2 {
		t.Fatalf("deep-copied estimator wrong: n=%d median=%v", dst.N(), dst.Value())
	}
}

// TestQuantileMergePreInitExact: while a side is still buffering its
// first five observations, Merge replays those raw values through Add, so
// the result is exactly a sequential feed — in a.b order when the donor is
// pre-init, in b.a order when the receiver is (the initialized state has
// to come first; P² is order-sensitive past initialization).
func TestQuantileMergePreInitExact(t *testing.T) {
	cases := []struct{ a, b []float64 }{
		{[]float64{5, 1, 9}, []float64{2, 7}},
		{[]float64{4}, []float64{8, 3, 6, 1, 9, 2, 7}},
		{[]float64{10, 20, 30, 40, 50, 60}, []float64{15, 25}},
		{[]float64{3, 1, 4, 1}, []float64{5, 9, 2, 6, 5, 3, 5}},
	}
	for ci, c := range cases {
		first, second := c.a, c.b
		if len(c.a) < 5 && len(c.b) >= 5 {
			first, second = c.b, c.a
		}
		seq := MustQuantile(0.5)
		for _, x := range first {
			seq.Add(x)
		}
		for _, x := range second {
			seq.Add(x)
		}
		a, b := MustQuantile(0.5), MustQuantile(0.5)
		for _, x := range c.a {
			a.Add(x)
		}
		for _, x := range c.b {
			b.Add(x)
		}
		a.Merge(b)
		if !sameQuantileState(a, seq) {
			t.Errorf("case %d: merged (n=%d, v=%v) differs from sequential replay (n=%d, v=%v)",
				ci, a.n, a.Value(), seq.n, seq.Value())
		}
	}
}

// TestQuantileMergeUniform bounds the merged estimate against exact order
// statistics with the same tolerance the single-estimator uniform test
// uses: 1.2% of the range.
func TestQuantileMergeUniform(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		rng := rand.New(rand.NewSource(7))
		for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
			parts := make([]*Quantile, shards)
			for i := range parts {
				parts[i] = MustQuantile(p)
			}
			var xs []float64
			for i := 0; i < 50000; i++ {
				x := rng.Float64() * 1000
				xs = append(xs, x)
				parts[i%shards].Add(x)
			}
			merged := parts[0]
			for _, part := range parts[1:] {
				merged.Merge(part)
			}
			if merged.N() != 50000 {
				t.Fatalf("shards=%d p=%v: merged N = %d", shards, p, merged.N())
			}
			want := exactQuantile(xs, p)
			if got := merged.Value(); math.Abs(got-want) > 12 {
				t.Errorf("shards=%d p=%v: merged estimate %v vs exact %v", shards, p, got, want)
			}
		}
	}
}

// TestQuantileMergeNormal mirrors the single-estimator normal-tail test.
func TestQuantileMergeNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := []*Quantile{MustQuantile(0.95), MustQuantile(0.95), MustQuantile(0.95), MustQuantile(0.95)}
	var xs []float64
	for i := 0; i < 80000; i++ {
		x := rng.NormFloat64()*50 + 500
		xs = append(xs, x)
		parts[i%len(parts)].Add(x)
	}
	merged := parts[0]
	for _, part := range parts[1:] {
		merged.Merge(part)
	}
	want := exactQuantile(xs, 0.95)
	if got := merged.Value(); math.Abs(got-want)/want > 0.02 {
		t.Errorf("merged normal p95: %v vs %v", got, want)
	}
}

// TestQuantileMergePure: Merge never mutates its argument, and the same
// pair of states always merges to the same result — the properties the
// sharded engine's determinism contract rests on.
func TestQuantileMergePure(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	build := func(n int, seed int64) *Quantile {
		r := rand.New(rand.NewSource(seed))
		q := MustQuantile(0.9)
		for i := 0; i < n; i++ {
			q.Add(r.ExpFloat64() * 100)
		}
		return q
	}
	for trial := 0; trial < 20; trial++ {
		na, nb := 5+rng.Intn(2000), 5+rng.Intn(2000)
		a1, a2 := build(na, int64(trial)), build(na, int64(trial))
		b := build(nb, int64(trial)+1000)
		bBefore := *b
		a1.Merge(b)
		a2.Merge(b)
		if !sameQuantileState(b, &bBefore) {
			t.Fatal("Merge mutated its argument")
		}
		if !sameQuantileState(a1, a2) {
			t.Fatal("identical merges produced different states")
		}
	}
}

// TestQuantileMergeThenAdd: a merged estimator must remain a valid P²
// state that keeps tracking the quantile as observations continue.
func TestQuantileMergeThenAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a, b := MustQuantile(0.9), MustQuantile(0.9)
	var xs []float64
	for i := 0; i < 10000; i++ {
		x := rng.Float64() * 1000
		xs = append(xs, x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	for i := 0; i < 40000; i++ {
		x := rng.Float64() * 1000
		xs = append(xs, x)
		a.Add(x)
	}
	want := exactQuantile(xs, 0.9)
	if got := a.Value(); math.Abs(got-want) > 12 {
		t.Errorf("post-merge accumulation drifted: %v vs exact %v", got, want)
	}
	for i := 1; i < 5; i++ {
		if a.pos[i] <= a.pos[i-1] {
			t.Fatalf("marker positions not strictly increasing after merge+add: %v", a.pos)
		}
	}
}

func TestQuantileMergeMismatchedP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging estimators with different p did not panic")
		}
	}()
	a, b := MustQuantile(0.9), MustQuantile(0.95)
	b.Add(1)
	a.Merge(b)
}

func TestQuantileMonotoneAcrossP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := []float64{0.1, 0.5, 0.9, 0.99}
	var qs []*Quantile
	for _, p := range ps {
		qs = append(qs, MustQuantile(p))
	}
	for i := 0; i < 30000; i++ {
		x := rng.ExpFloat64() * 100
		for _, q := range qs {
			q.Add(x)
		}
	}
	for i := 1; i < len(qs); i++ {
		if qs[i].Value() < qs[i-1].Value() {
			t.Fatalf("quantile estimates not monotone: p%v=%v < p%v=%v",
				ps[i], qs[i].Value(), ps[i-1], qs[i-1].Value())
		}
	}
}
