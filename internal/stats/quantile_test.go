package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func exactQuantile(xs []float64, p float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	idx := int(p * float64(len(tmp)))
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

func TestQuantileRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewQuantile(p); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustQuantile(0) did not panic")
		}
	}()
	MustQuantile(0)
}

func TestQuantileSmallSamples(t *testing.T) {
	q := MustQuantile(0.5)
	if q.Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	q.Add(10)
	if q.Value() != 10 {
		t.Fatalf("one observation: %v", q.Value())
	}
	q.Add(20)
	q.Add(30)
	v := q.Value()
	if v < 10 || v > 30 {
		t.Fatalf("three observations: median estimate %v", v)
	}
	if q.N() != 3 {
		t.Fatalf("N = %d", q.N())
	}
}

func TestQuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		q := MustQuantile(p)
		var xs []float64
		for i := 0; i < 50000; i++ {
			x := rng.Float64() * 1000
			xs = append(xs, x)
			q.Add(x)
		}
		want := exactQuantile(xs, p)
		got := q.Value()
		if math.Abs(got-want) > 12 { // 1.2% of the range
			t.Errorf("p=%v: estimate %v vs exact %v", p, got, want)
		}
	}
}

func TestQuantileNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := MustQuantile(0.95)
	var xs []float64
	for i := 0; i < 80000; i++ {
		x := rng.NormFloat64()*50 + 500
		xs = append(xs, x)
		q.Add(x)
	}
	want := exactQuantile(xs, 0.95)
	if got := q.Value(); math.Abs(got-want)/want > 0.02 {
		t.Errorf("normal p95: %v vs %v", got, want)
	}
}

func TestQuantileBimodalAndConstants(t *testing.T) {
	// Constants: the estimate is the constant.
	q := MustQuantile(0.9)
	for i := 0; i < 1000; i++ {
		q.Add(42)
	}
	if q.Value() != 42 {
		t.Fatalf("constant stream: %v", q.Value())
	}
	// Bimodal: p50 lands in or between the modes.
	rng := rand.New(rand.NewSource(3))
	q2 := MustQuantile(0.5)
	for i := 0; i < 40000; i++ {
		if rng.Intn(2) == 0 {
			q2.Add(10 + rng.Float64())
		} else {
			q2.Add(1000 + rng.Float64())
		}
	}
	v := q2.Value()
	if v < 10 || v > 1001 {
		t.Fatalf("bimodal median %v outside data range", v)
	}
}

func TestQuantileMonotoneAcrossP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := []float64{0.1, 0.5, 0.9, 0.99}
	var qs []*Quantile
	for _, p := range ps {
		qs = append(qs, MustQuantile(p))
	}
	for i := 0; i < 30000; i++ {
		x := rng.ExpFloat64() * 100
		for _, q := range qs {
			q.Add(x)
		}
	}
	for i := 1; i < len(qs); i++ {
		if qs[i].Value() < qs[i-1].Value() {
			t.Fatalf("quantile estimates not monotone: p%v=%v < p%v=%v",
				ps[i], qs[i].Value(), ps[i-1], qs[i-1].Value())
		}
	}
}
