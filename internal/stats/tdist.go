package stats

import "math"

// This file implements the Student-t distribution from first principles
// (regularized incomplete beta function plus numeric inversion) because the
// Go standard library has no statistics package and the module is stdlib
// only. Accuracy is far beyond what the testbed's stopping rule needs; the
// tests pin quantiles against published 4-decimal tables.

// regIncBeta returns the regularized incomplete beta function I_x(a, b),
// evaluated with the continued-fraction expansion (Lentz's method), using
// the symmetry relation to keep the fraction in its fast-converging region.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz algorithm.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TCDF returns P(T <= t) for a Student-t variable with df degrees of
// freedom.
func TCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	//airlint:allow floatcompare exact symmetry-point shortcut; nearby t falls through to the series
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom (the value t such that TCDF(t, df) == p). It inverts
// the CDF by bisection, which is fully robust across the df range the
// testbed uses (1 .. millions).
func TQuantile(p, df float64) float64 {
	switch {
	case df <= 0 || p <= 0 || p >= 1:
		return math.NaN()
	//airlint:allow floatcompare exact median shortcut; nearby p falls through to bisection
	case p == 0.5:
		return 0
	}
	// Exploit symmetry so we only invert the upper tail.
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}
	lo, hi := 0.0, 2.0
	for TCDF(hi, df) < p {
		hi *= 2
		if hi > 1e12 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// NormalCDF returns the standard normal CDF, used as a large-df cross-check
// of the t implementation and by tests.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
