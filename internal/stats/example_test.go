package stats_test

import (
	"fmt"

	"github.com/airindex/airindex/internal/stats"
)

// The paper's stopping rule: a run may end once the confidence-interval
// half-width H over the sample mean Y falls at or below the requested
// accuracy at the requested confidence level.
func ExampleSample_Converged() {
	var s stats.Sample
	for i := 0; i < 10000; i++ {
		s.Add(500 + float64(i%7)) // tightly clustered observations
	}
	acc, _ := s.Accuracy(0.99)
	fmt.Printf("n=%d mean=%.1f accuracy=%.5f converged(1%%)=%v\n",
		s.N(), s.Mean(), acc, s.Converged(0.99, 0.01))
	// Output:
	// n=10000 mean=503.0 accuracy=0.00010 converged(1%)=true
}

// Student-t critical values drive the half-width; at 0.99 confidence with
// many samples they approach the normal 2.576.
func ExampleTQuantile() {
	fmt.Printf("t(0.995, df=10)  = %.3f\n", stats.TQuantile(0.995, 10))
	fmt.Printf("t(0.995, df=1e6) = %.3f\n", stats.TQuantile(0.995, 1e6))
	// Output:
	// t(0.995, df=10)  = 3.169
	// t(0.995, df=1e6) = 2.576
}
