// Package stats implements the statistics the testbed's accuracy control
// needs: online mean/variance accumulation (Welford), Student-t quantiles
// computed from scratch (stdlib only), and the confidence-interval
// half-width test the paper uses to decide when a simulation may stop.
//
// The paper (§4.1, footnote 1) defines confidence accuracy as H/Y where H
// is the confidence-interval half-width H = t(α/2; N−1) · σ/√N and Y is the
// sample mean; a simulation run continues until H/Y falls at or below the
// requested accuracy at the requested confidence level.
package stats

import (
	"fmt"
	"math"
)

// Sample accumulates observations with Welford's online algorithm, which is
// numerically stable for the long (>50,000 observation) runs the testbed
// performs.
type Sample struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
	min  float64
	max  float64
}

// Add records one observation.
//
//airlint:hotpath
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll records a batch of observations in slice order. It is exactly
// equivalent to calling Add on each element — Welford accumulation is
// order-sensitive, so the columnar cohort engine hands whole result
// columns here instead of interleaving per-request Add calls, and the
// bits still match the sequential path.
//
//airlint:hotpath
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// Merge folds another sample into s (parallel Welford combination).
func (s *Sample) Merge(o *Sample) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	delta := o.mean - s.mean
	total := s.n + o.n
	s.mean += delta * float64(o.n) / float64(total)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(total)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = total
}

// N returns the number of observations.
func (s *Sample) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 when n < 2).
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean, σ/√N.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// HalfWidth returns the confidence-interval half-width
// H = t(α/2; N−1) · σ/√N at the given confidence level (e.g. 0.99).
// It returns 0 when fewer than two observations exist.
func (s *Sample) HalfWidth(confidence float64) float64 {
	if s.n < 2 {
		return 0
	}
	t := TQuantile(1-(1-confidence)/2, float64(s.n-1))
	return t * s.StdErr()
}

// Accuracy returns H/|Y|, the paper's confidence accuracy, and whether it is
// defined (a zero mean makes the ratio meaningless).
func (s *Sample) Accuracy(confidence float64) (float64, bool) {
	//airlint:allow floatcompare exact zero guards an undefined ratio; any nonzero mean, however small, defines it
	if s.n < 2 || s.mean == 0 {
		return 0, false
	}
	return s.HalfWidth(confidence) / math.Abs(s.mean), true
}

// Converged reports whether the sample meets the paper's stopping rule:
// confidence accuracy H/Y at the given confidence level is at or below acc.
// A degenerate all-equal sample (H == 0) counts as converged.
func (s *Sample) Converged(confidence, acc float64) bool {
	if s.n < 2 {
		return false
	}
	//airlint:allow floatcompare m2 is exactly 0 iff every observation is identical (Welford never rounds to 0)
	if s.m2 == 0 {
		return true
	}
	a, ok := s.Accuracy(confidence)
	return ok && a <= acc
}

// String summarizes the sample for logs.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.0f max=%.0f", s.n, s.Mean(), s.StdDev(), s.min, s.max)
}
