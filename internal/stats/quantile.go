package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile estimates a single quantile online with the P² algorithm (Jain
// & Chlamtac, CACM 1985): five markers track the running quantile without
// storing observations, which keeps per-request result handling O(1) even
// for the testbed's longest runs. Estimates converge to the true quantile
// for stationary inputs; the tests bound the error against exact
// order statistics.
type Quantile struct {
	p       float64
	n       int64
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	grow    [5]float64 // desired position increments per observation
	initial []float64  // first five observations, pre-initialization
}

// NewQuantile returns an estimator for the p-quantile, 0 < p < 1.
func NewQuantile(p float64) (*Quantile, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("stats: quantile %v outside (0,1)", p)
	}
	q := &Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.grow = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q, nil
}

// MustQuantile is NewQuantile for static probabilities; it panics on error.
func MustQuantile(p float64) *Quantile {
	q, err := NewQuantile(p)
	if err != nil {
		panic(err)
	}
	return q
}

// N returns the number of observations seen.
func (q *Quantile) N() int64 { return q.n }

// P returns the target probability.
func (q *Quantile) P() float64 { return q.p }

// Add records one observation.
//
//airlint:hotpath
func (q *Quantile) Add(x float64) {
	q.n++
	if q.n <= 5 {
		q.initial = append(q.initial, x) //airlint:allow hotalloc warm-up only: the first five observations per estimator buffer here
		if q.n == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.heights[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
			q.initial = nil
		}
		return
	}

	// Find the cell k containing x and clamp the extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		k = 3
		for i := 1; i < 5; i++ {
			if x < q.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.grow[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// AddAll records a batch of observations in slice order — exactly
// equivalent to calling Add on each element. P² marker updates are
// order-sensitive like Welford accumulation, so the cohort engine's
// column-at-a-time folding stays bit-identical to per-request adds.
//
//airlint:hotpath
func (q *Quantile) AddAll(xs []float64) {
	for _, x := range xs {
		q.Add(x)
	}
}

// Merge folds another estimator of the same quantile into q, weighting
// each side by its observation count. The round-sharded engine uses it to
// combine per-shard tail estimators at every wave barrier: the merge is a
// pure function of the two states, so a merged Result is bit-identical
// however the shards were scheduled.
//
// Semantics by state: an empty receiver copies o verbatim (so a
// one-shard merge is exact); a side still buffering its first five
// observations replays them through Add (also exact); two initialized
// estimators combine their five-marker summaries by inverting the
// count-weighted mixture of their piecewise-linear marker CDFs — an
// approximation, like P² itself, whose error the tests bound against
// exact order statistics. o is never modified.
func (q *Quantile) Merge(o *Quantile) {
	if o == nil || o.n == 0 {
		return
	}
	if math.Abs(q.p-o.p) > 1e-12 {
		panic(fmt.Sprintf("stats: merging estimators for different quantiles %v and %v", q.p, o.p))
	}
	if q.n == 0 {
		q.copyFrom(o)
		return
	}
	if o.n < 5 {
		for _, x := range o.initial {
			q.Add(x)
		}
		return
	}
	if q.n < 5 {
		pending := append([]float64(nil), q.initial...)
		q.copyFrom(o)
		for _, x := range pending {
			q.Add(x)
		}
		return
	}
	q.mergeInitialized(o)
}

// copyFrom makes q a deep copy of o.
func (q *Quantile) copyFrom(o *Quantile) {
	*q = *o
	q.initial = append([]float64(nil), o.initial...)
}

// mergeInitialized merges two fully initialized (n >= 5) estimators.
func (q *Quantile) mergeInitialized(o *Quantile) {
	total := q.n + o.n
	// Breakpoints of the mixture CDF: the union of both marker sets.
	xs := make([]float64, 0, 10)
	xs = append(xs, q.heights[:]...)
	xs = append(xs, o.heights[:]...)
	sort.Float64s(xs)
	wq := float64(q.n) / float64(total)
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = wq*markerCDF(&q.heights, &q.pos, q.n, x) + (1-wq)*markerCDF(&o.heights, &o.pos, o.n, x)
	}
	// Re-seat the five markers at their canonical quantiles of the mixture.
	us := [5]float64{0, q.p / 2, q.p, (1 + q.p) / 2, 1}
	var h [5]float64
	for i, u := range us {
		h[i] = invertPiecewise(xs, fs, u)
	}
	for i := 1; i < 5; i++ {
		if h[i] < h[i-1] {
			h[i] = h[i-1]
		}
	}
	q.n = total
	q.heights = h
	// Desired positions after n observations are want_i = 1 + (n-1)·u_i
	// (the closed form of the per-Add increments); actual positions snap
	// to the nearest integers kept strictly increasing within [1, n].
	for i, u := range us {
		q.want[i] = 1 + float64(total-1)*u
	}
	q.pos[0] = 1
	q.pos[4] = float64(total)
	for i := 1; i <= 3; i++ {
		p := math.Round(q.want[i])
		if p < q.pos[i-1]+1 {
			p = q.pos[i-1] + 1
		}
		if hi := float64(total) - float64(4-i); p > hi {
			p = hi
		}
		q.pos[i] = p
	}
	q.initial = nil
}

// markerCDF evaluates the piecewise-linear CDF through the five marker
// points (heights[i], (pos[i]-1)/(n-1)) at x, clamped to [0, 1].
func markerCDF(heights, pos *[5]float64, n int64, x float64) float64 {
	if x <= heights[0] {
		return 0
	}
	if x >= heights[4] {
		return 1
	}
	u := func(i int) float64 { return (pos[i] - 1) / float64(n-1) }
	for i := 1; i < 5; i++ {
		if x < heights[i] {
			lo, hi := heights[i-1], heights[i]
			if hi-lo <= 0 {
				return u(i)
			}
			return u(i-1) + (x-lo)/(hi-lo)*(u(i)-u(i-1))
		}
	}
	return 1
}

// invertPiecewise returns the leftmost x with F(x) >= target for the
// nondecreasing piecewise-linear function through (xs[i], fs[i]).
func invertPiecewise(xs, fs []float64, target float64) float64 {
	if target <= fs[0] {
		return xs[0]
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] >= target {
			lo, hi := fs[i-1], fs[i]
			if hi-lo <= 0 {
				return xs[i]
			}
			return xs[i-1] + (target-lo)/(hi-lo)*(xs[i]-xs[i-1])
		}
	}
	return xs[len(xs)-1]
}

// parabolic is the P² piecewise-parabolic prediction for marker i.
func (q *Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback linear prediction.
func (q *Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current estimate. With fewer than five observations it
// falls back to the exact small-sample quantile.
func (q *Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		tmp := append([]float64(nil), q.initial...)
		sort.Float64s(tmp)
		idx := int(q.p * float64(len(tmp)))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		return tmp[idx]
	}
	return q.heights[2]
}
