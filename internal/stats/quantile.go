package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile estimates a single quantile online with the P² algorithm (Jain
// & Chlamtac, CACM 1985): five markers track the running quantile without
// storing observations, which keeps per-request result handling O(1) even
// for the testbed's longest runs. Estimates converge to the true quantile
// for stationary inputs; the tests bound the error against exact
// order statistics.
type Quantile struct {
	p       float64
	n       int64
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	grow    [5]float64 // desired position increments per observation
	initial []float64  // first five observations, pre-initialization
}

// NewQuantile returns an estimator for the p-quantile, 0 < p < 1.
func NewQuantile(p float64) (*Quantile, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("stats: quantile %v outside (0,1)", p)
	}
	q := &Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.grow = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q, nil
}

// MustQuantile is NewQuantile for static probabilities; it panics on error.
func MustQuantile(p float64) *Quantile {
	q, err := NewQuantile(p)
	if err != nil {
		panic(err)
	}
	return q
}

// N returns the number of observations seen.
func (q *Quantile) N() int64 { return q.n }

// P returns the target probability.
func (q *Quantile) P() float64 { return q.p }

// Add records one observation.
func (q *Quantile) Add(x float64) {
	q.n++
	if q.n <= 5 {
		q.initial = append(q.initial, x)
		if q.n == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.heights[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
			q.initial = nil
		}
		return
	}

	// Find the cell k containing x and clamp the extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		k = 3
		for i := 1; i < 5; i++ {
			if x < q.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.grow[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic prediction for marker i.
func (q *Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback linear prediction.
func (q *Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current estimate. With fewer than five observations it
// falls back to the exact small-sample quantile.
func (q *Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		tmp := append([]float64(nil), q.initial...)
		sort.Float64s(tmp)
		idx := int(q.p * float64(len(tmp)))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		return tmp[idx]
	}
	return q.heights[2]
}
