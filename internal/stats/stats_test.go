package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Unbiased variance of that classic dataset is 32/7.
	if !almost(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Variance() != 0 || s.StdErr() != 0 || s.HalfWidth(0.99) != 0 {
		t.Fatal("empty sample should report zero spread")
	}
	if _, ok := s.Accuracy(0.99); ok {
		t.Fatal("accuracy of empty sample should be undefined")
	}
	s.Add(3)
	if s.Variance() != 0 {
		t.Fatal("single observation should have zero variance")
	}
	if s.Converged(0.99, 0.01) {
		t.Fatal("single observation must not count as converged")
	}
}

func TestSampleMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b Sample
	for i := 0; i < 5000; i++ {
		x := rng.NormFloat64()*10 + 100
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almost(a.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged mean %v, want %v", a.Mean(), whole.Mean())
	}
	if !almost(a.Variance(), whole.Variance(), 1e-6) {
		t.Fatalf("merged variance %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var empty, s Sample
	s.Add(1)
	s.Add(2)
	before := s
	s.Merge(&empty)
	if s != before {
		t.Fatal("merging an empty sample changed the receiver")
	}
	empty.Merge(&s)
	if empty.N() != 2 || !almost(empty.Mean(), 1.5, 1e-12) {
		t.Fatal("merging into an empty sample should copy")
	}
}

// Property: merging any split of a sequence equals accumulating the whole
// sequence (within floating tolerance).
func TestQuickMergeAssociativity(t *testing.T) {
	f := func(xs []float64, cut uint8) bool {
		// Constrain to finite, moderate values.
		clean := xs[:0:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, math.Mod(x, 1e6))
		}
		if len(clean) == 0 {
			return true
		}
		k := int(cut) % len(clean)
		var whole, a, b Sample
		for _, x := range clean {
			whole.Add(x)
		}
		for _, x := range clean[:k] {
			a.Add(x)
		}
		for _, x := range clean[k:] {
			b.Add(x)
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			almost(a.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean()))) &&
			almost(a.Variance(), whole.Variance(), 1e-5*(1+whole.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is order-invariant — folding A into B and B into A give
// the same moments — and propagates min/max exactly.
func TestQuickMergeOrderInvariance(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(vs []float64) []float64 {
			out := vs[:0:0]
			for _, v := range vs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				out = append(out, math.Mod(v, 1e6))
			}
			return out
		}
		as, bs := clean(xs), clean(ys)
		var ab, ba Sample
		for _, x := range as {
			ab.Add(x)
		}
		for _, y := range bs {
			ba.Add(y)
		}
		a, b := ab, ba
		ab.Merge(&b)
		ba.Merge(&a)
		if ab.N() != ba.N() {
			return false
		}
		if ab.N() == 0 {
			return true
		}
		if ab.Min() != ba.Min() || ab.Max() != ba.Max() {
			return false
		}
		return almost(ab.Mean(), ba.Mean(), 1e-6*(1+math.Abs(ab.Mean()))) &&
			almost(ab.Variance(), ba.Variance(), 1e-5*(1+ab.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: any parenthesisation of a three-way split merges to the same
// moments as sequential accumulation, and min/max survive every path.
func TestQuickMergeThreeWayAssociativity(t *testing.T) {
	f := func(xs []float64, c1, c2 uint8) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, math.Mod(x, 1e6))
		}
		if len(clean) == 0 {
			return true
		}
		i := int(c1) % len(clean)
		j := i + int(c2)%(len(clean)-i+1)
		fill := func(vs []float64) Sample {
			var s Sample
			for _, v := range vs {
				s.Add(v)
			}
			return s
		}
		var whole Sample
		for _, x := range clean {
			whole.Add(x)
		}
		// (a ∪ b) ∪ c
		left, b1, c1s := fill(clean[:i]), fill(clean[i:j]), fill(clean[j:])
		left.Merge(&b1)
		left.Merge(&c1s)
		// a ∪ (b ∪ c)
		a2, right, c2s := fill(clean[:i]), fill(clean[i:j]), fill(clean[j:])
		right.Merge(&c2s)
		a2.Merge(&right)
		for _, m := range []*Sample{&left, &a2} {
			if m.N() != whole.N() || m.Min() != whole.Min() || m.Max() != whole.Max() {
				return false
			}
			if !almost(m.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean()))) ||
				!almost(m.Variance(), whole.Variance(), 1e-5*(1+whole.Variance())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Published two-sided critical values for Student's t.
func TestTQuantileAgainstTables(t *testing.T) {
	cases := []struct {
		p, df, want float64
	}{
		{0.975, 1, 12.7062},
		{0.975, 5, 2.5706},
		{0.975, 10, 2.2281},
		{0.975, 30, 2.0423},
		{0.995, 1, 63.6567},
		{0.995, 5, 4.0321},
		{0.995, 10, 3.1693},
		{0.995, 30, 2.7500},
		{0.995, 100, 2.6259},
		{0.95, 10, 1.8125},
		{0.90, 20, 1.3253},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if !almost(got, c.want, 5e-4*c.want+5e-4) {
			t.Errorf("TQuantile(%v, %v) = %.5f, want %.4f", c.p, c.df, got, c.want)
		}
	}
}

func TestTCDFRoundTrip(t *testing.T) {
	for _, df := range []float64{1, 2, 7, 29, 499, 10000} {
		for _, p := range []float64{0.6, 0.75, 0.9, 0.975, 0.995, 0.9999} {
			q := TQuantile(p, df)
			back := TCDF(q, df)
			if !almost(back, p, 1e-9) {
				t.Errorf("TCDF(TQuantile(%v, df=%v)) = %v", p, df, back)
			}
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []float64{3, 12, 60} {
		for _, p := range []float64{0.6, 0.8, 0.99} {
			if !almost(TQuantile(p, df), -TQuantile(1-p, df), 1e-9) {
				t.Errorf("quantile not symmetric at p=%v df=%v", p, df)
			}
		}
	}
	if TQuantile(0.5, 10) != 0 {
		t.Error("median of t distribution should be 0")
	}
}

func TestTApproachesNormal(t *testing.T) {
	// For large df the t distribution converges to the standard normal.
	for _, p := range []float64{0.9, 0.975, 0.995} {
		tq := TQuantile(p, 1e6)
		// Invert the normal CDF by bisection for the reference value.
		lo, hi := 0.0, 10.0
		for i := 0; i < 100; i++ {
			mid := (lo + hi) / 2
			if NormalCDF(mid) < p {
				lo = mid
			} else {
				hi = mid
			}
		}
		if !almost(tq, (lo+hi)/2, 1e-3) {
			t.Errorf("t(df=1e6) quantile %v far from normal %v at p=%v", tq, (lo+hi)/2, p)
		}
	}
}

func TestTInvalidInputs(t *testing.T) {
	for _, v := range []float64{TQuantile(0, 5), TQuantile(1, 5), TQuantile(0.9, 0), TCDF(1, -1)} {
		if !math.IsNaN(v) {
			t.Errorf("invalid input returned %v, want NaN", v)
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("incomplete beta edge values wrong")
	}
	// I_x(1,1) is the identity.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if !almost(regIncBeta(1, 1, x), x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, regIncBeta(1, 1, x))
		}
	}
	// I_x(a,b) + I_{1-x}(b,a) == 1.
	for _, x := range []float64{0.2, 0.35, 0.8} {
		s := regIncBeta(3.5, 1.25, x) + regIncBeta(1.25, 3.5, 1-x)
		if !almost(s, 1, 1e-10) {
			t.Errorf("symmetry violated at x=%v: %v", x, s)
		}
	}
}

func TestConvergedStoppingRule(t *testing.T) {
	// A tight sample converges; a loose one does not.
	var tight Sample
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		tight.Add(1000 + rng.NormFloat64())
	}
	if !tight.Converged(0.99, 0.01) {
		acc, _ := tight.Accuracy(0.99)
		t.Fatalf("tight sample should converge (accuracy %v)", acc)
	}
	var loose Sample
	loose.Add(1)
	loose.Add(1000)
	loose.Add(2000)
	if loose.Converged(0.99, 0.01) {
		t.Fatal("loose 3-observation sample must not converge at 1%")
	}
	var constant Sample
	for i := 0; i < 5; i++ {
		constant.Add(42)
	}
	if !constant.Converged(0.99, 0.01) {
		t.Fatal("constant sample should count as converged")
	}
}

func TestHalfWidthShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s Sample
	var prev float64 = math.Inf(1)
	for _, n := range []int{100, 1000, 10000} {
		for s.N() < int64(n) {
			s.Add(50 + 5*rng.NormFloat64())
		}
		h := s.HalfWidth(0.99)
		if h >= prev {
			t.Fatalf("half-width did not shrink: %v -> %v at n=%d", prev, h, n)
		}
		prev = h
	}
}
