// Package scenarios embeds the airql scripts that generate every
// experiment family. The scripts are the single source of truth for the
// sweeps: internal/experiments compiles them at run time, `cmd/airql`
// compiles them (or any on-disk script) directly, and the airql-regen CI
// job recompiles every one of them and byte-diffs the CSVs it emits
// against the committed results/.
package scenarios

import (
	"embed"
	"sort"
	"strings"
)

//go:embed *.airql
var scripts embed.FS

// Names lists the embedded script file names ("fig4.airql", ...), sorted.
func Names() []string {
	entries, err := scripts.ReadDir(".")
	if err != nil {
		// The embedded FS root always reads; an error here is a build bug.
		panic("scenarios: " + err.Error())
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".airql") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// Source returns an embedded script's text by file name.
func Source(name string) (string, error) {
	b, err := scripts.ReadFile(name)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
